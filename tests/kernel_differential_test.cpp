// The tentpole invariant of the SIMD kernel layer: partitions are
// byte-identical across every kernel x thread x steal x shard x storage
// tier combination. The kernels change instruction selection, never
// values; this suite is the executable proof.
//
// Kernels are swept in-process via intersect::set_active (the TLP_KERNEL
// env path is exercised end-to-end by tools/check.sh's kernel-matrix leg,
// which partitions through the CLI under each env value and byte-compares
// the outputs).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/multi_tlp.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "graph/intersect_kernels.hpp"
#include "graph/io.hpp"
#include "graph/storage.hpp"

namespace tlp {
namespace {

namespace fs = std::filesystem;
using intersect::Kernel;

/// Pins the scalar kernel for the reference run and restores the process
/// default on destruction.
class KernelGuard {
 public:
  KernelGuard() : saved_(intersect::active_kind()) {}
  ~KernelGuard() { intersect::set_active(saved_); }

 private:
  Kernel saved_;
};

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> kernels;
  for (const Kernel k : {Kernel::kScalar, Kernel::kSse42, Kernel::kAvx2}) {
    if (intersect::supported(k)) kernels.push_back(k);
  }
  return kernels;
}

class KernelDifferential : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Power-law graph: hubs make the gallop path and the two-hop counting
    // pass both fire, so every kernel entry point is on the partition's
    // critical path.
    graph_ = new Graph(gen::chung_lu_power_law(2000, 9000, 2.1, 97));
    // PID-unique: ctest -j runs each test row as its own process, and
    // concurrent rows sharing one spill path race write/map/unlink.
    csr_path_ = new fs::path(
        fs::temp_directory_path() /
        ("tlp_kernel_differential_" + std::to_string(::getpid()) + ".tlpc"));
    io::write_csr_file(*graph_, *csr_path_);
  }
  static void TearDownTestSuite() {
    fs::remove(*csr_path_);
    delete csr_path_;
    csr_path_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static const Graph& reference() { return *graph_; }
  static const fs::path& csr_path() { return *csr_path_; }

  static Graph* graph_;
  static fs::path* csr_path_;
};

Graph* KernelDifferential::graph_ = nullptr;
fs::path* KernelDifferential::csr_path_ = nullptr;

TEST_F(KernelDifferential, SequentialTlpKernelInvariant) {
  KernelGuard guard;
  PartitionConfig config;
  config.num_partitions = 10;
  ASSERT_TRUE(intersect::set_active(Kernel::kScalar));
  const std::vector<TlpPartitioner> algos = {TlpPartitioner{},
                                             make_tlp_r(0.5)};
  std::vector<EdgePartition> expected;
  expected.reserve(algos.size());
  for (const TlpPartitioner& p : algos) {
    expected.push_back(p.partition(reference(), config));
  }
  for (const Kernel k : supported_kernels()) {
    ASSERT_TRUE(intersect::set_active(k));
    for (std::size_t i = 0; i < algos.size(); ++i) {
      SCOPED_TRACE(algos[i].name() + " kernel=" +
                   std::string(intersect::kernel_name(k)));
      EXPECT_EQ(algos[i].partition(reference(), config).raw(),
                expected[i].raw());
    }
  }
}

TEST_F(KernelDifferential, FullMatrixKernelThreadsStealShardsTiers) {
  KernelGuard guard;
  PartitionConfig config;
  config.num_partitions = 8;
  // Scalar single-thread shared-memory in-memory run is the reference for
  // the ENTIRE matrix.
  ASSERT_TRUE(intersect::set_active(Kernel::kScalar));
  const EdgePartition expected =
      MultiTlpPartitioner{}.partition(reference(), config);

  const std::vector<std::pair<std::string, StorageOptions>> tiers = {
      {"in_memory", StorageOptions::parse("in_memory")},
      {"mmap", StorageOptions::parse("mmap")},
      {"hybrid:8", StorageOptions::parse("hybrid:8")},
  };
  for (const Kernel k : supported_kernels()) {
    ASSERT_TRUE(intersect::set_active(k));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (const bool steal : {true, false}) {
        for (const std::uint32_t shards : {0u, 4u}) {
          MultiTlpOptions mo;
          mo.num_threads = threads;
          mo.steal = steal;
          mo.num_shards = shards;
          const MultiTlpPartitioner partitioner{mo};
          for (const auto& [label, options] : tiers) {
            SCOPED_TRACE("kernel=" +
                         std::string(intersect::kernel_name(k)) +
                         " threads=" + std::to_string(threads) +
                         " steal=" + (steal ? "on" : "off") +
                         " shards=" + std::to_string(shards) + " tier=" +
                         label);
            const Graph tiered = io::load_csr_file(csr_path(), options);
            EXPECT_EQ(partitioner.partition(tiered, config).raw(),
                      expected.raw());
          }
        }
      }
    }
  }
}

TEST_F(KernelDifferential, CommonNeighborCountsKernelInvariantOnHubs) {
  KernelGuard guard;
  // Spot-check Graph::common_neighbor_count itself across kernels on the
  // highest-degree vertices (where gallop + vector windows engage).
  const Graph& g = reference();
  VertexId hub = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  ASSERT_TRUE(intersect::set_active(Kernel::kScalar));
  std::vector<std::size_t> expected;
  const VertexId probe_count = std::min<VertexId>(g.num_vertices(), 200);
  for (VertexId v = 0; v < probe_count; ++v) {
    expected.push_back(g.common_neighbor_count(hub, v));
  }
  for (const Kernel k : supported_kernels()) {
    ASSERT_TRUE(intersect::set_active(k));
    for (VertexId v = 0; v < probe_count; ++v) {
      ASSERT_EQ(g.common_neighbor_count(hub, v), expected[v])
          << "kernel=" << intersect::kernel_name(k) << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace tlp
