// Determinism regression: every registered partitioner must produce
// byte-identical assignments when run twice with the same (graph, seed) —
// including when both runs share one RunContext, so scratch-arena reuse can
// never leak state between runs.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "bench_common/runner.hpp"
#include "gen/generators.hpp"
#include "partition/registry.hpp"
#include "partition/run_context.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, RepeatedRunsShareOneContext) {
  const std::string& name = GetParam();
  const Graph g = gen::sbm(400, 2400, 8, 0.8, /*seed=*/31);
  PartitionConfig config;
  config.num_partitions = 5;
  config.seed = 1234;

  const PartitionerPtr partitioner = make_partitioner(name);
  RunContext ctx;
  const EdgePartition a = partitioner->partition(g, config, ctx);
  const EdgePartition b = partitioner->partition(g, config, ctx);
  EXPECT_TRUE(validate(g, a, config).ok()) << name;
  EXPECT_EQ(a.raw(), b.raw()) << name << ": arena reuse changed the result";

  // A fresh context must agree with the shared one, too.
  RunContext fresh;
  const EdgePartition c = partitioner->partition(g, config, fresh);
  EXPECT_EQ(a.raw(), c.raw()) << name << ": context identity leaked in";
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, DeterminismTest, ::testing::ValuesIn([] {
                           bench::register_builtin_partitioners();
                           return registered_partitioners();
                         }()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace tlp
