// ReplicaSetPool: the flat n x ceil(p/64) membership slab. The word-
// boundary cases (p = 63/64/65) are where a per-vertex stride bug would
// bleed one vertex's bits into its neighbour's set, so they get explicit
// coverage, as does arena-lease reuse across runs (stale bits from run 1
// must never leak into run 2).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "partition/replica_set.hpp"

namespace tlp {
namespace {

class ReplicaSetPoolWidth : public ::testing::TestWithParam<PartitionId> {};

TEST_P(ReplicaSetPoolWidth, InsertContainsRoundTripEveryPartition) {
  const PartitionId p = GetParam();
  constexpr std::size_t kVertices = 5;
  ReplicaSetPool pool(kVertices, p);
  EXPECT_EQ(pool.words_per_vertex(), (static_cast<std::size_t>(p) + 63) / 64);
  for (VertexId v = 0; v < kVertices; ++v) {
    EXPECT_TRUE(pool.empty(v));
    for (PartitionId k = 0; k < p; ++k) {
      EXPECT_FALSE(pool.contains(v, k));
    }
  }
  // Vertex v gets partitions {v, v+1, ...} mod p stepping by kVertices: a
  // distinct pattern per vertex, covering first/last bit of every word.
  for (VertexId v = 0; v < kVertices; ++v) {
    for (PartitionId k = static_cast<PartitionId>(v); k < p;
         k += static_cast<PartitionId>(kVertices)) {
      pool.insert(v, k);
    }
  }
  for (VertexId v = 0; v < kVertices; ++v) {
    // Vertex v inserted anything only if its first candidate id v < p.
    EXPECT_EQ(!pool.empty(v), static_cast<PartitionId>(v) < p);
    for (PartitionId k = 0; k < p; ++k) {
      const bool expected = k % kVertices == v;
      EXPECT_EQ(pool.contains(v, k), expected)
          << "p=" << p << " v=" << v << " k=" << k;
    }
  }
}

TEST_P(ReplicaSetPoolWidth, BoundaryBitsDoNotBleedAcrossVertices) {
  const PartitionId p = GetParam();
  ReplicaSetPool pool(3, p);
  // Highest valid partition id on vertex 1 only: its neighbours' words are
  // adjacent in the slab, so an off-by-one stride would set a bit there.
  pool.insert(1, p - 1);
  EXPECT_TRUE(pool.contains(1, p - 1));
  EXPECT_TRUE(pool.empty(0));
  EXPECT_TRUE(pool.empty(2));
  EXPECT_FALSE(pool.contains(0, p - 1));
  EXPECT_FALSE(pool.contains(2, p - 1));
  pool.insert(0, 0);
  EXPECT_TRUE(pool.contains(0, 0));
  EXPECT_FALSE(pool.contains(1, 0));
}

TEST_P(ReplicaSetPoolWidth, IntersectsRequiresSharedPartition) {
  const PartitionId p = GetParam();
  ReplicaSetPool pool(2, p);
  EXPECT_FALSE(pool.intersects(0, 1));
  pool.insert(0, 0);
  pool.insert(1, p - 1);
  // Disjoint: 0 holds the first bit, 1 holds the last (different words
  // whenever p > 64).
  EXPECT_FALSE(pool.intersects(0, 1));
  pool.insert(0, p - 1);
  EXPECT_TRUE(pool.intersects(0, 1));
  EXPECT_TRUE(pool.intersects(1, 0));
  EXPECT_TRUE(pool.intersects(0, 0));  // self-intersection of non-empty set
}

// p >= 2 throughout: the suite distinguishes first from last partition id.
INSTANTIATE_TEST_SUITE_P(WordBoundaries, ReplicaSetPoolWidth,
                         ::testing::Values(PartitionId{2}, PartitionId{63},
                                           PartitionId{64}, PartitionId{65},
                                           PartitionId{130}));

TEST_P(ReplicaSetPoolWidth, EraseClearsExactlyOneBit) {
  const PartitionId p = GetParam();
  ReplicaSetPool pool(2, p);
  pool.insert(0, 0);
  pool.insert(0, p - 1);
  pool.insert(1, p - 1);
  pool.erase(0, p - 1);
  EXPECT_FALSE(pool.contains(0, p - 1));
  EXPECT_TRUE(pool.contains(0, 0));      // other bits untouched
  EXPECT_TRUE(pool.contains(1, p - 1));  // other vertices untouched
  pool.erase(0, p - 1);  // double-erase is a no-op
  EXPECT_FALSE(pool.contains(0, p - 1));
  pool.erase(0, 0);
  EXPECT_TRUE(pool.empty(0));
}

TEST_P(ReplicaSetPoolWidth, WordsExposesPackedMembership) {
  const PartitionId p = GetParam();
  ReplicaSetPool pool(2, p);
  pool.insert(1, 0);
  pool.insert(1, p - 1);
  const std::uint64_t* words = pool.words(1);
  // Partition k lives at word k/64, bit k%64 — the layout the refinement
  // candidate scan walks word-parallel.
  EXPECT_EQ((words[0] >> 0) & 1ULL, 1ULL);
  EXPECT_EQ((words[(p - 1) / 64] >> ((p - 1) % 64)) & 1ULL, 1ULL);
  std::size_t set_bits = 0;
  for (std::size_t w = 0; w < pool.words_per_vertex(); ++w) {
    set_bits += static_cast<std::size_t>(std::popcount(words[w]));
  }
  EXPECT_EQ(set_bits, p == 1 ? 1u : 2u);
  // Vertex 0 inserted nothing: all of its words must be zero.
  const std::uint64_t* empty_words = pool.words(0);
  for (std::size_t w = 0; w < pool.words_per_vertex(); ++w) {
    EXPECT_EQ(empty_words[w], 0ULL);
  }
}

TEST(ReplicaSetPool, ArenaReuseAcrossRunsStartsClean) {
  ScratchArena arena;
  {
    ReplicaSetPool first(arena, 4, 65);
    for (VertexId v = 0; v < 4; ++v) {
      first.insert(v, 0);
      first.insert(v, 64);
    }
  }
  // Same arena, same shape: the lease hands back the dirtied buffer, and
  // acquire() must have scrubbed it.
  const std::uint64_t hits_before = arena.hits();
  ReplicaSetPool second(arena, 4, 65);
  EXPECT_GT(arena.hits(), hits_before);  // proof the slab was recycled
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_TRUE(second.empty(v));
    EXPECT_FALSE(second.contains(v, 0));
    EXPECT_FALSE(second.contains(v, 64));
  }
}

TEST(ReplicaSetPool, OwnedModeGrowToPreservesAndExtends) {
  ReplicaSetPool pool(2, 70);
  pool.insert(0, 69);
  pool.insert(1, 3);
  pool.grow_to(5);
  EXPECT_EQ(pool.num_vertices(), 5u);
  EXPECT_TRUE(pool.contains(0, 69));
  EXPECT_TRUE(pool.contains(1, 3));
  for (VertexId v = 2; v < 5; ++v) EXPECT_TRUE(pool.empty(v));
  pool.insert(4, 69);
  EXPECT_TRUE(pool.contains(4, 69));
  // Shrinking requests are no-ops.
  pool.grow_to(1);
  EXPECT_EQ(pool.num_vertices(), 5u);
}

TEST(ReplicaSetPool, ResetReshapesAndClears) {
  ReplicaSetPool pool;
  pool.reset(3, 10);
  pool.insert(2, 9);
  EXPECT_TRUE(pool.contains(2, 9));
  pool.reset(6, 128);
  EXPECT_EQ(pool.num_vertices(), 6u);
  EXPECT_EQ(pool.words_per_vertex(), 2u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_TRUE(pool.empty(v));
  EXPECT_EQ(pool.slab_bytes(), 6u * 2u * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace tlp
