// Tests for the SSSP and label-propagation GAS programs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/label_propagation.hpp"
#include "engine/sssp.hpp"
#include "gen/generators.hpp"
#include "graph/algorithms.hpp"

namespace tlp::engine {
namespace {

EdgePartition round_robin(const Graph& g, PartitionId p) {
  EdgePartition part(p, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.assign(e, static_cast<PartitionId>(e % p));
  }
  return part;
}

TEST(Sssp, MatchesBfsDistances) {
  const Graph g = gen::erdos_renyi(200, 600, 31);
  const SsspResult result = distributed_sssp(g, round_robin(g, 4), 0);
  const auto reference = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (reference[v] == std::numeric_limits<std::size_t>::max()) {
      EXPECT_EQ(result.distances[v], kUnreachedDistance);
    } else {
      EXPECT_EQ(result.distances[v], reference[v]) << "vertex " << v;
    }
  }
}

TEST(Sssp, PathDistancesExact) {
  const Graph g = gen::path_graph(10);
  const SsspResult result = distributed_sssp(g, round_robin(g, 3), 3);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(result.distances[v],
              static_cast<std::uint32_t>(v > 3 ? v - 3 : 3 - v));
  }
}

TEST(Sssp, UnreachableStaysMax) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  const SsspResult result = distributed_sssp(g, round_robin(g, 2), 0);
  EXPECT_EQ(result.distances[0], 0u);
  EXPECT_EQ(result.distances[1], 1u);
  EXPECT_EQ(result.distances[2], kUnreachedDistance);
  EXPECT_EQ(result.distances[3], kUnreachedDistance);
}

TEST(Sssp, RejectsBadSource) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)distributed_sssp(g, round_robin(g, 2), 4),
               std::out_of_range);
}

TEST(Sssp, ConvergesInDiameterSupersteps) {
  const Graph g = gen::path_graph(32);
  const SsspResult result = distributed_sssp(g, round_robin(g, 2), 0, 200);
  // Needs ~diameter supersteps plus one to detect quiescence.
  EXPECT_GE(result.comm.supersteps, 31u);
  EXPECT_LE(result.comm.supersteps, 34u);
}

TEST(LabelPropagation, RecoversDisjointCliques) {
  // Two disjoint cliques must converge to exactly two labels.
  EdgeList edges;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      edges.push_back(Edge{u, v});
      edges.push_back(
          Edge{static_cast<VertexId>(u + 8), static_cast<VertexId>(v + 8)});
    }
  }
  const Graph g = Graph::from_edges(16, std::move(edges));
  const LabelPropagationResult result =
      label_propagation(g, round_robin(g, 3));
  EXPECT_EQ(result.num_communities, 2u);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(result.labels[v], result.labels[0]);
    EXPECT_EQ(result.labels[v + 8], result.labels[8]);
  }
  EXPECT_NE(result.labels[0], result.labels[8]);
}

TEST(LabelPropagation, CavemanCommunitiesMostlyRecovered) {
  const Graph g = gen::caveman_graph(6, 10);
  const LabelPropagationResult result =
      label_propagation(g, round_robin(g, 4));
  // Bridged cliques may occasionally merge, never explode.
  EXPECT_GE(result.num_communities, 3u);
  EXPECT_LE(result.num_communities, 7u);
}

TEST(LabelPropagation, IsolatedVerticesKeepOwnLabel) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  const LabelPropagationResult result =
      label_propagation(g, round_robin(g, 2));
  EXPECT_EQ(result.labels[2], 2u);
  EXPECT_EQ(result.labels[3], 3u);
  EXPECT_EQ(result.labels[4], 4u);
}

TEST(LabelPropagation, DeterministicAndConvergent) {
  const Graph g = gen::sbm(300, 2400, 6, 0.9, 41);
  const auto a = label_propagation(g, round_robin(g, 4));
  const auto b = label_propagation(g, round_robin(g, 4));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_LT(a.comm.supersteps, 50u);  // converged before the cap
}

}  // namespace
}  // namespace tlp::engine
