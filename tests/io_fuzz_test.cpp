// Robustness fuzzing: every reader must either parse or throw
// std::runtime_error on arbitrary byte soup — never crash, hang, or return
// a structurally invalid graph.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "dist/wire_format.hpp"
#include "graph/io.hpp"
#include "partition/partition_io.hpp"
#include "gen/generators.hpp"
#include "stream/edge_stream.hpp"
#include "stream/window_tlp.hpp"

namespace tlp {
namespace {

/// Validates whatever a reader produced: adjacency must be self-consistent.
void expect_structurally_sane(const Graph& g) {
  EdgeId adjacency_entries = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      ASSERT_LT(nb.vertex, g.num_vertices());
      ASSERT_LT(nb.edge, g.num_edges());
      ++adjacency_entries;
    }
  }
  EXPECT_EQ(adjacency_entries, 2 * g.num_edges());
}

std::string random_bytes(std::mt19937_64& rng, std::size_t length,
                         bool printable) {
  std::string s(length, '\0');
  for (char& ch : s) {
    if (printable) {
      // Digits, whitespace, and a few separators: plausible-looking input.
      static constexpr char kAlphabet[] = "0123456789 \t\n#%-+.,ab";
      ch = kAlphabet[rng() % (sizeof kAlphabet - 1)];
    } else {
      ch = static_cast<char>(rng() % 256);
    }
  }
  return s;
}

TEST(IoFuzz, EdgeListReaderNeverCrashes) {
  std::mt19937_64 rng(1);
  for (int round = 0; round < 200; ++round) {
    std::istringstream in(random_bytes(rng, 1 + rng() % 200, round % 2 == 0));
    try {
      const Graph g = io::read_edge_list(in);
      expect_structurally_sane(g);
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
}

TEST(IoFuzz, MatrixMarketReaderNeverCrashes) {
  std::mt19937_64 rng(2);
  for (int round = 0; round < 200; ++round) {
    std::string payload = round % 3 == 0
                              ? "%%MatrixMarket matrix coordinate pattern "
                                "symmetric\n"
                              : "";
    payload += random_bytes(rng, 1 + rng() % 200, round % 2 == 0);
    std::istringstream in(payload);
    try {
      const Graph g = io::read_matrix_market(in);
      expect_structurally_sane(g);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(IoFuzz, BinaryGraphReaderNeverCrashes) {
  std::mt19937_64 rng(3);
  // Corrupt a real payload at random offsets, plus pure noise.
  const Graph g = gen::erdos_renyi(30, 60, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, buffer);
  const std::string clean = buffer.str();
  for (int round = 0; round < 200; ++round) {
    std::string payload;
    if (round % 2 == 0) {
      payload = clean;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        payload[rng() % payload.size()] ^= static_cast<char>(1 + rng() % 255);
      }
      payload.resize(rng() % (payload.size() + 1));
    } else {
      payload = random_bytes(rng, rng() % 120, false);
    }
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in << payload;
    try {
      const Graph parsed = io::read_binary(in);
      expect_structurally_sane(parsed);
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
      // from_edges rejecting corrupted endpoints is also acceptable
    }
  }
}

TEST(IoFuzz, CsrReaderNeverCrashes) {
  // Same recipe as the TLPG fuzz round, against the binary CSR format and
  // all three storage tiers: corrupt a real file at random offsets (plus
  // pure noise and truncations) and require parse-or-throw — the mapped
  // tiers must validate before serving any pointer into the payload.
  std::mt19937_64 rng(5);
  const Graph g = gen::erdos_renyi(40, 90, 6);
  const auto path =
      std::filesystem::temp_directory_path() / "tlp_fuzz_csr.tlpc";
  io::write_csr_file(g, path);
  std::string clean;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    clean = buffer.str();
  }
  const std::array<StorageOptions, 3> tiers = {
      StorageOptions::parse("in_memory"), StorageOptions::parse("mmap"),
      StorageOptions::parse("hybrid:4")};
  for (int round = 0; round < 60; ++round) {
    std::string payload;
    if (round % 2 == 0) {
      payload = clean;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        payload[rng() % payload.size()] ^= static_cast<char>(1 + rng() % 255);
      }
      if (round % 4 == 0) payload.resize(rng() % (payload.size() + 1));
    } else {
      payload = random_bytes(rng, rng() % 300, false);
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << payload;
    }
    for (const StorageOptions& options : tiers) {
      try {
        const Graph parsed = io::load_csr_file(path, options);
        expect_structurally_sane(parsed);
      } catch (const std::runtime_error&) {
        // acceptable outcome
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(IoFuzz, EdgeRunReaderNeverCrashes) {
  // TLPR spill runs back the external-sort builder. A truncated or
  // corrupted run must throw std::runtime_error — at open (bad magic,
  // count/size mismatch) or mid-stream (truncation, non-canonical edge,
  // order violation) — and every edge actually yielded must be canonical
  // and strictly ascending; silent corruption here would propagate into
  // the merged .tlpc.
  std::mt19937_64 rng(7);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 40; ++u) {
    for (VertexId v = u + 1; v < 40; v += 1 + u % 5) {
      edges.push_back(Edge{u, v});
    }
  }
  const auto path =
      std::filesystem::temp_directory_path() / "tlp_fuzz_run.spill";
  io::write_edge_run(path, edges.data(), edges.size());
  std::string clean;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    clean = buffer.str();
  }

  // Sanity: the clean run round-trips in full.
  {
    io::EdgeRunReader reader(path);
    ASSERT_EQ(reader.count(), edges.size());
    Edge e;
    std::size_t yielded = 0;
    while (reader.next(e)) {
      ASSERT_EQ(e, edges[yielded]);
      ++yielded;
    }
    ASSERT_EQ(yielded, edges.size());
  }

  for (int round = 0; round < 200; ++round) {
    std::string payload;
    if (round % 2 == 0) {
      payload = clean;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        payload[rng() % payload.size()] ^= static_cast<char>(1 + rng() % 255);
      }
      if (round % 4 == 0) payload.resize(rng() % (payload.size() + 1));
    } else {
      payload = random_bytes(rng, rng() % 200, false);
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << payload;
    }
    try {
      io::EdgeRunReader reader(path);
      Edge e;
      Edge prev{0, 0};
      bool first = true;
      while (reader.next(e)) {
        // Anything the reader does hand out must satisfy the run
        // invariants (it throws before yielding a violation).
        ASSERT_LT(e.u, e.v);
        if (!first) ASSERT_TRUE(prev < e);
        prev = e;
        first = false;
      }
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
  std::filesystem::remove(path);
}

TEST(IoFuzz, PartitionReadersNeverCrash) {
  std::mt19937_64 rng(4);
  const Graph g = gen::path_graph(6);
  for (int round = 0; round < 150; ++round) {
    std::istringstream text(random_bytes(rng, 1 + rng() % 150, true));
    try {
      (void)io::read_partition_text(g, text);
    } catch (const std::runtime_error&) {
    }
    std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
    binary << random_bytes(rng, rng() % 100, false);
    try {
      (void)io::read_partition_binary(binary);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(IoFuzz, FileEdgeStreamRejectsGarbageButSurvivesComments) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto good = dir / "tlp_fuzz_good.txt";
  {
    std::ofstream out(good);
    out << "# header\n0 1\n\n% other comment\n1 2\n2 0\n";
  }
  stream::FileEdgeStream s(good);
  EXPECT_EQ(s.total_edges(), 3u);
  EXPECT_EQ(s.num_vertices(), 3u);
  std::size_t count = 0;
  while (s.next().has_value()) ++count;
  EXPECT_EQ(count, 3u);
  std::filesystem::remove(good);

  const auto bad = dir / "tlp_fuzz_bad.txt";
  {
    std::ofstream out(bad);
    out << "0 1\nnot an edge\n";
  }
  EXPECT_THROW(stream::FileEdgeStream{bad}, std::runtime_error);
  std::filesystem::remove(bad);

  EXPECT_THROW(stream::FileEdgeStream{"/no/such/file"}, std::runtime_error);
}

TEST(IoFuzz, WireFrameParserNeverCrashes) {
  // Same parse-or-throw contract as the file readers, applied to the
  // socket transport's frame stream (dist/wire_format.hpp): corrupt a
  // valid multi-frame stream at random offsets (plus truncations and pure
  // noise) and require that try_parse_frame either yields in-bounds
  // frames or throws WireError — never reads out of bounds or loops.
  namespace wire = dist::wire;
  std::mt19937_64 rng(11);

  // A realistic stream: data frames carrying each codec type, barrier
  // frames (empty payload), and a BYE.
  std::vector<unsigned char> clean;
  std::vector<unsigned char> payload;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    payload.clear();
    wire::WireCodec<dist::ClaimRequest>::encode(
        payload, dist::ClaimRequest{seq * 17, static_cast<PartitionId>(seq)});
    wire::encode_frame(clean, wire::FrameType::kData,
                       static_cast<std::uint16_t>(seq % 3), seq,
                       payload.data(),
                       static_cast<std::uint32_t>(payload.size()));
  }
  payload.clear();
  wire::WireCodec<std::uint64_t>::encode(payload, 0xFEEDFACEull);
  wire::encode_frame(clean, wire::FrameType::kData, 0, 6, payload.data(),
                     static_cast<std::uint32_t>(payload.size()));
  wire::encode_frame(clean, wire::FrameType::kBarrierArrive, 0, 0, nullptr,
                     0);
  wire::encode_frame(clean, wire::FrameType::kBarrierRelease, 0, 0, nullptr,
                     0);
  wire::encode_frame(clean, wire::FrameType::kBye, 0, 0, nullptr, 0);

  // Sanity: the clean stream parses back in full.
  {
    std::size_t offset = 0;
    wire::FrameView view;
    std::size_t frames = 0;
    while (wire::try_parse_frame(clean, offset, view)) ++frames;
    EXPECT_EQ(frames, 10u);
    EXPECT_EQ(offset, clean.size());
  }

  for (int round = 0; round < 300; ++round) {
    std::vector<unsigned char> buf;
    if (round % 2 == 0) {
      buf = clean;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t i = 0; i < flips; ++i) {
        buf[rng() % buf.size()] ^=
            static_cast<unsigned char>(1 + rng() % 255);
      }
      if (round % 4 == 0) buf.resize(rng() % (buf.size() + 1));
    } else {
      const std::string noise = random_bytes(rng, rng() % 200, false);
      buf.assign(noise.begin(), noise.end());
    }
    std::size_t offset = 0;
    wire::FrameView view;
    try {
      while (wire::try_parse_frame(buf, offset, view)) {
        // Every yielded frame must be fully in bounds...
        ASSERT_LE(offset, buf.size());
        ASSERT_GE(view.payload, buf.data());
        ASSERT_LE(view.payload + view.payload_len, buf.data() + buf.size());
        // ...and a typed decode of its payload must parse or throw.
        if (view.type == wire::FrameType::kData) {
          try {
            (void)wire::WireCodec<dist::ClaimRequest>::decode(
                view.payload, view.payload_len);
          } catch (const wire::WireError&) {
          }
        }
      }
    } catch (const wire::WireError&) {
      // acceptable outcome: the stream is poisoned, parsing stopped
    }
  }
}

TEST(IoFuzz, WireHelloRejectsCorruptionOrPreservesFields) {
  namespace wire = dist::wire;
  std::mt19937_64 rng(13);
  std::vector<unsigned char> clean;
  wire::encode_hello(clean, wire::Hello{3, 7});
  ASSERT_EQ(clean.size(), wire::kHelloSize);
  EXPECT_EQ(wire::decode_hello(clean.data(), clean.size()).rank, 3u);
  for (int round = 0; round < 200; ++round) {
    std::vector<unsigned char> buf = clean;
    buf[rng() % buf.size()] ^= static_cast<unsigned char>(1 + rng() % 255);
    try {
      // A flip in the rank/num_senders field decodes to a different value
      // (the channel demux validates it); a flip anywhere in the magic /
      // version / endian-probe prefix must throw.
      (void)wire::decode_hello(buf.data(), buf.size());
    } catch (const wire::WireError&) {
    }
    // Truncations always throw: the length is checked first.
    if (round % 4 == 0) {
      EXPECT_THROW((void)wire::decode_hello(buf.data(), rng() % buf.size()),
                   wire::WireError);
    }
  }
}

TEST(IoFuzz, WireCodecsRejectShortPayloads) {
  namespace wire = dist::wire;
  std::vector<unsigned char> buf;
  wire::WireCodec<dist::ClaimRequest>::encode(buf,
                                              dist::ClaimRequest{42, 1});
  ASSERT_EQ(buf.size(), wire::WireCodec<dist::ClaimRequest>::kSize);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(
        (void)wire::WireCodec<dist::ClaimRequest>::decode(buf.data(), len),
        wire::WireError);
    EXPECT_THROW(
        (void)wire::WireCodec<dist::ClaimWin>::decode(buf.data(), len),
        wire::WireError);
  }
  for (std::size_t len = 0; len < 8; ++len) {
    EXPECT_THROW(
        (void)wire::WireCodec<std::uint64_t>::decode(buf.data(), len),
        wire::WireError);
  }
  const dist::ClaimRequest round_trip =
      wire::WireCodec<dist::ClaimRequest>::decode(buf.data(), buf.size());
  EXPECT_EQ(round_trip, (dist::ClaimRequest{42, 1}));
}

TEST(IoFuzz, FileStreamFeedsWindowTlp) {
  // End-to-end: disk -> FileEdgeStream -> WindowTlp.
  const Graph g = gen::erdos_renyi(100, 400, 7);
  const auto path =
      std::filesystem::temp_directory_path() / "tlp_fuzz_stream.txt";
  io::write_edge_list_file(g, path);

  stream::FileEdgeStream source(path);
  PartitionConfig config;
  config.num_partitions = 4;
  const auto assignment =
      stream::WindowTlpPartitioner{}.partition_stream(source, config);
  ASSERT_EQ(assignment.size(), static_cast<std::size_t>(g.num_edges()));
  for (const PartitionId part : assignment) {
    EXPECT_LT(part, 4u);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tlp
