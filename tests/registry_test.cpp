// Tests for the partitioner registry and builtin registration.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_common/runner.hpp"
#include "partition/registry.hpp"

namespace tlp {
namespace {

TEST(Registry, BuiltinsAreRegistered) {
  bench::register_builtin_partitioners();
  for (const char* name :
       {"tlp", "metis", "ldg", "dbh", "random", "grid", "greedy", "hdrf",
        "ne", "fennel", "kl", "2ps", "window_tlp", "multi_tlp",
        "tlp+refine"}) {
    EXPECT_TRUE(is_registered(name)) << name;
    const PartitionerPtr p = make_partitioner(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
}

TEST(Registry, RegistrationIsIdempotent) {
  bench::register_builtin_partitioners();
  EXPECT_NO_THROW(bench::register_builtin_partitioners());
}

TEST(Registry, UnknownNameThrowsWithKnownList) {
  bench::register_builtin_partitioners();
  try {
    (void)make_partitioner("definitely-not-registered");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tlp"), std::string::npos);
    EXPECT_NE(what.find("metis"), std::string::npos);
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  bench::register_builtin_partitioners();
  EXPECT_THROW(register_partitioner("tlp", nullptr), std::logic_error);
}

TEST(Registry, ListIsSorted) {
  bench::register_builtin_partitioners();
  const auto names = registered_partitioners();
  EXPECT_GE(names.size(), 9u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

}  // namespace
}  // namespace tlp
