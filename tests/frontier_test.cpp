// Tests for the Frontier candidate structure — this is where the paper's
// Eq. 7 (μs1) and Eq. 9 (μs2) selection rules live, so the hand-computed
// examples here are the ground truth for the scoring math, and the
// randomized differential suite pits the flat (epoch-stamped dense array +
// bucket ladder) implementation against a naive O(|frontier|)-scan oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "core/frontier.hpp"

namespace tlp {
namespace {

TEST(Frontier, StartsEmpty) {
  Frontier f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.select_stage1(), kInvalidVertex);
  EXPECT_EQ(f.select_stage2(0, 0), kInvalidVertex);
}

TEST(Frontier, InsertAndConnectionCounting) {
  Frontier f;
  f.add_connection(7, /*rdeg=*/4, 0.5);
  EXPECT_TRUE(f.contains(7));
  EXPECT_EQ(f.connections(7), 1u);
  f.add_connection(7, 4, 0.2);
  EXPECT_EQ(f.connections(7), 2u);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, ClearAndRemove) {
  Frontier f;
  f.add_connection(1, 2, 0.1);
  f.add_connection(2, 3, 0.9);
  f.remove(2);
  EXPECT_FALSE(f.contains(2));
  EXPECT_EQ(f.select_stage1(), 1u);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.select_stage1(), kInvalidVertex);
}

TEST(Frontier, RemoveOfNonCandidateIsNoOp) {
  Frontier f;
  f.add_connection(1, 2, 0.1);
  f.remove(99);  // never inserted
  f.remove(1);
  f.remove(1);  // second removal of the same vertex
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
}

TEST(Frontier, AtExposesCandidateState) {
  Frontier f;
  f.add_connection(5, 7, 0.25);
  f.add_connection(5, 7, 0.75);
  const Frontier::Candidate& cand = f.at(5);
  EXPECT_EQ(cand.c, 2u);
  EXPECT_EQ(cand.rdeg, 7u);
  EXPECT_DOUBLE_EQ(cand.mu1, 0.75);
}

TEST(FrontierStage1, PicksMaxMu1) {
  Frontier f;
  f.add_connection(10, 5, 0.4);  // μs1(10) = 0.4
  f.add_connection(20, 5, 0.6);  // μs1(20) = 0.6
  f.add_connection(30, 5, 0.5);  // μs1(30) = 0.5
  EXPECT_EQ(f.select_stage1(), 20u);
}

TEST(FrontierStage1, RunningMaxUpgradesCandidate) {
  Frontier f;
  f.add_connection(10, 5, 0.4);
  f.add_connection(20, 5, 0.6);
  // Vertex 10 gains a closer member: its μs1 = max(0.4, 0.9) = 0.9.
  f.add_connection(10, 5, 0.9);
  EXPECT_EQ(f.select_stage1(), 10u);
  // Lower later term must NOT downgrade the max.
  f.add_connection(10, 5, 0.1);
  EXPECT_EQ(f.select_stage1(), 10u);
}

TEST(FrontierStage1, TieBreaksToSmallerId) {
  Frontier f;
  f.add_connection(42, 3, 0.7);
  f.add_connection(17, 3, 0.7);
  EXPECT_EQ(f.select_stage1(), 17u);
}

TEST(FrontierStage1, SelectionSurvivesRemovalOfTop) {
  Frontier f;
  f.add_connection(1, 2, 0.9);
  f.add_connection(2, 2, 0.8);
  f.add_connection(3, 2, 0.7);
  EXPECT_EQ(f.select_stage1(), 1u);
  f.remove(1);
  EXPECT_EQ(f.select_stage1(), 2u);
  f.remove(2);
  EXPECT_EQ(f.select_stage1(), 3u);
}

// Hand-computed μs2 (Eq. 9): maximizing μs2 = 1 - 1/(1+ΔM) is equivalent to
// maximizing M' = (e_in + c) / (e_out + rdeg - 2c).
TEST(FrontierStage2, HandComputedSelection) {
  Frontier f;
  // Candidate A (id 1): c=1, rdeg=4. With e_in=5, e_out=4:
  //   M'(A) = (5+1)/(4+4-2) = 6/6 = 1.0
  f.add_connection(1, 4, 0.0);
  // Candidate B (id 2): c=2, rdeg=3:
  //   M'(B) = (5+2)/(4+3-4) = 7/3 ≈ 2.33  -> winner
  f.add_connection(2, 3, 0.0);
  f.add_connection(2, 3, 0.0);
  // Candidate C (id 3): c=1, rdeg=7 (hub with many external edges):
  //   M'(C) = (5+1)/(4+7-2) = 6/9 ≈ 0.67
  f.add_connection(3, 7, 0.0);
  EXPECT_EQ(f.select_stage2(5, 4), 2u);
}

TEST(FrontierStage2, ZeroDenominatorWins) {
  Frontier f;
  // Candidate 1: c=2, rdeg=2, e_out=2 -> denominator 2+2-4=0 (absorbing it
  // closes the partition boundary entirely): M' = infinity.
  f.add_connection(1, 2, 0.0);
  f.add_connection(1, 2, 0.0);
  // Candidate 2: huge c but nonzero denominator.
  f.add_connection(2, 9, 0.0);
  f.add_connection(2, 9, 0.0);
  f.add_connection(2, 9, 0.0);
  EXPECT_EQ(f.select_stage2(100, 2), 1u);
}

TEST(FrontierStage2, WithinSameCPrefersSmallerResidualDegree) {
  Frontier f;
  f.add_connection(5, 9, 0.0);  // c=1, rdeg=9
  f.add_connection(6, 3, 0.0);  // c=1, rdeg=3 -> smaller denominator, wins
  EXPECT_EQ(f.select_stage2(1, 5), 6u);
}

TEST(FrontierStage2, ExactTieBreaksToLargerC) {
  Frontier f;
  // e_in=1, e_out=3. A(c=1, rdeg=3): 2/(3+3-2)=2/4=1/2.
  // B(c=2, rdeg=7): 3/(3+7-4)=3/6=1/2. Tie -> larger c (B, id 2) wins.
  f.add_connection(1, 3, 0.0);
  f.add_connection(2, 7, 0.0);
  f.add_connection(2, 7, 0.0);
  EXPECT_EQ(f.select_stage2(1, 3), 2u);
}

TEST(FrontierStage2, StageSelectionsAreIndependent) {
  // Stage-2 ranking must ignore μs1 and vice versa.
  Frontier f;
  f.add_connection(1, 8, 0.99);  // great μs1, poor M'
  f.add_connection(2, 2, 0.01);  // poor μs1, great M'
  EXPECT_EQ(f.select_stage1(), 1u);
  EXPECT_EQ(f.select_stage2(3, 3), 2u);
}

// The eager path (concurrent growth): c, rdeg, and μs1 may all be re-stated
// in any direction.
TEST(FrontierUpsert, RestatesAllKeys) {
  Frontier f;
  f.upsert(4, 3, 9, 0.8);
  EXPECT_EQ(f.at(4).c, 3u);
  EXPECT_EQ(f.at(4).rdeg, 9u);
  EXPECT_EQ(f.select_stage1(), 4u);
  // A rival partition stole edges: c and rdeg DROP, μs1 drops too.
  f.upsert(4, 1, 5, 0.2);
  f.upsert(6, 2, 5, 0.5);
  EXPECT_EQ(f.at(4).c, 1u);
  EXPECT_EQ(f.at(4).rdeg, 5u);
  EXPECT_EQ(f.select_stage1(), 6u);  // stale 0.8 entry must not resurface
  // Stage 2 must use the re-stated (c, rdeg), not the push-time ones:
  // e_in=2, e_out=3: M'(4) = 3/(3+5-2) = 1/2, M'(6) = 4/(3+5-4) = 1. 6 wins.
  EXPECT_EQ(f.select_stage2(2, 3), 6u);
  f.remove(6);
  EXPECT_EQ(f.select_stage2(2, 3), 4u);
}

// Two rounds on the same Frontier must not leak stale candidates — even
// when a vertex reappears in the next round with the SAME (c, rdeg) state,
// so its old bucket entries look live again.
TEST(Frontier, EpochReuseAcrossRounds) {
  Frontier f;
  f.add_connection(1, 3, 0.5);
  f.add_connection(2, 3, 0.7);
  f.add_connection(2, 3, 0.7);  // c(2) = 2
  EXPECT_EQ(f.select_stage1(), 2u);
  f.clear();

  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.contains(1));
  EXPECT_FALSE(f.contains(2));
  EXPECT_EQ(f.select_stage1(), kInvalidVertex);
  EXPECT_EQ(f.select_stage2(0, 0), kInvalidVertex);

  // Round 2: vertex 1 reappears with the same c=1/rdeg=3 but a LOWER μs1;
  // vertex 2 stays out. The round-1 heap entries (μs1 0.5 and 0.7) and
  // bucket entries must not influence any selection.
  f.add_connection(1, 3, 0.1);
  f.add_connection(9, 4, 0.2);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.select_stage1(), 9u);
  // Stage 2 with e_in=0, e_out=2: M'(1) = 1/(2+3-2) = 1/3,
  // M'(9) = 1/(2+4-2) = 1/4 -> vertex 1 wins; vertex 2 must never surface.
  EXPECT_EQ(f.select_stage2(0, 2), 1u);
  f.remove(1);
  EXPECT_EQ(f.select_stage2(0, 2), 9u);
  f.remove(9);
  EXPECT_EQ(f.select_stage2(0, 2), kInvalidVertex);
}

// ---------------------------------------------------------------------------
// Randomized differential suite: the flat Frontier vs a naive oracle that
// stores candidates in a std::map and scans ALL of them per selection with
// the documented ranking rules.
// ---------------------------------------------------------------------------

struct OracleCandidate {
  std::uint32_t c = 0;
  std::uint32_t rdeg = 0;
  double mu1 = 0.0;
};

class OracleFrontier {
 public:
  void add_connection(VertexId u, std::uint32_t rdeg, double term) {
    auto [it, inserted] = cands_.try_emplace(u);
    if (inserted) {
      it->second = {1, rdeg, term};
      return;
    }
    ++it->second.c;
    it->second.mu1 = std::max(it->second.mu1, term);
  }

  void upsert(VertexId v, std::uint32_t c, std::uint32_t rdeg, double mu1) {
    cands_[v] = {c, rdeg, mu1};
  }

  void remove(VertexId v) { cands_.erase(v); }
  void clear() { cands_.clear(); }
  [[nodiscard]] bool contains(VertexId v) const { return cands_.contains(v); }
  [[nodiscard]] std::size_t size() const { return cands_.size(); }

  /// argmax μs1, ties by smaller id (the map iterates ids ascending, so the
  /// first strict improvement wins).
  [[nodiscard]] VertexId select_stage1() const {
    VertexId best = kInvalidVertex;
    double best_mu = -1.0;
    for (const auto& [v, cand] : cands_) {
      if (cand.mu1 > best_mu) {
        best_mu = cand.mu1;
        best = v;
      }
    }
    return best;
  }

  /// argmax M' = (e_in + c)/(e_out + rdeg - 2c) over ALL candidates, exact
  /// fraction compare; ties by larger c, then smaller rdeg, then smaller id.
  [[nodiscard]] VertexId select_stage2(EdgeId e_in, EdgeId e_out) const {
    VertexId best = kInvalidVertex;
    OracleCandidate bc;
    for (const auto& [v, cand] : cands_) {
      if (best == kInvalidVertex) {
        best = v;
        bc = cand;
        continue;
      }
      const auto num = [&](const OracleCandidate& x) {
        return static_cast<std::uint64_t>(e_in) + x.c;
      };
      const auto den = [&](const OracleCandidate& x) {
        return static_cast<std::uint64_t>(e_out) + x.rdeg - 2ULL * x.c;
      };
      const auto better = [](std::uint64_t n1, std::uint64_t d1,
                             std::uint64_t n2, std::uint64_t d2) {
        if (d1 == 0 && d2 == 0) return n1 > n2;
        if (d1 == 0) return true;
        if (d2 == 0) return false;
        return static_cast<unsigned __int128>(n1) * d2 >
               static_cast<unsigned __int128>(n2) * d1;
      };
      const bool wins =
          better(num(cand), den(cand), num(bc), den(bc)) ||
          (!better(num(bc), den(bc), num(cand), den(cand)) &&
           (cand.c > bc.c ||
            (cand.c == bc.c && cand.rdeg < bc.rdeg)));  // id: map order
      if (wins) {
        best = v;
        bc = cand;
      }
    }
    return best;
  }

  [[nodiscard]] std::uint64_t sum_c() const {
    std::uint64_t total = 0;
    for (const auto& [v, cand] : cands_) total += cand.c;
    return total;
  }

  [[nodiscard]] const std::map<VertexId, OracleCandidate>& all() const {
    return cands_;
  }

 private:
  std::map<VertexId, OracleCandidate> cands_;
};

/// Sequential-semantics script: rdeg frozen per (vertex, round), c only
/// grows (capped at rdeg so Stage-2 denominators stay valid), rounds end
/// with clear() so epoch reuse is exercised throughout.
TEST(FrontierDifferential, SequentialScriptMatchesOracle) {
  constexpr VertexId kIds = 48;
  std::mt19937 rng(20260806);
  Frontier flat;
  OracleFrontier oracle;
  std::vector<std::uint32_t> round_rdeg(kIds, 0);  // 0 = free this round

  const auto roll = [&](std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(rng);
  };

  for (int op = 0; op < 3000; ++op) {
    const std::uint32_t kind = roll(0, 99);
    if (kind < 55) {  // add_connection
      const VertexId u = roll(0, kIds - 1);
      if (!oracle.contains(u)) round_rdeg[u] = roll(1, 10);
      const std::uint32_t rdeg = round_rdeg[u];
      const bool at_cap = oracle.contains(u) && oracle.all().at(u).c >= rdeg;
      if (at_cap) continue;  // keep c <= rdeg (residual edges are real edges)
      const double term = roll(0, 1000) / 1000.0;
      flat.add_connection(u, rdeg, term);
      oracle.add_connection(u, rdeg, term);
    } else if (kind < 70) {  // remove a random live candidate
      if (oracle.size() == 0) continue;
      auto it = oracle.all().begin();
      std::advance(it, roll(0, static_cast<std::uint32_t>(oracle.size()) - 1));
      const VertexId v = it->first;
      flat.remove(v);
      oracle.remove(v);
    } else if (kind < 97) {  // compare both selections
      ASSERT_EQ(flat.size(), oracle.size());
      ASSERT_EQ(flat.select_stage1(), oracle.select_stage1())
          << "stage1 diverged at op " << op;
      const EdgeId e_in = roll(0, 100);
      const EdgeId e_out = oracle.sum_c() + roll(0, 5);
      ASSERT_EQ(flat.select_stage2(e_in, e_out),
                oracle.select_stage2(e_in, e_out))
          << "stage2 diverged at op " << op;
    } else {  // end of round
      flat.clear();
      oracle.clear();
      std::fill(round_rdeg.begin(), round_rdeg.end(), 0u);
    }
  }
}

/// Eager-semantics script (the concurrent growth API): upsert re-states
/// c/rdeg/μs1 in any direction, candidates vanish when rivals take their
/// last connection.
TEST(FrontierDifferential, EagerScriptMatchesOracle) {
  constexpr VertexId kIds = 40;
  std::mt19937 rng(777);
  Frontier flat;
  OracleFrontier oracle;

  const auto roll = [&](std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(rng);
  };

  for (int op = 0; op < 2500; ++op) {
    const std::uint32_t kind = roll(0, 99);
    if (kind < 60) {  // upsert with arbitrary (but valid: c <= rdeg) state
      const VertexId v = roll(0, kIds - 1);
      const std::uint32_t rdeg = roll(1, 12);
      const std::uint32_t c = roll(1, rdeg);
      const double mu1 = roll(0, 1000) / 1000.0;
      flat.upsert(v, c, rdeg, mu1);
      oracle.upsert(v, c, rdeg, mu1);
    } else if (kind < 72) {  // candidate lost its last connection
      if (oracle.size() == 0) continue;
      auto it = oracle.all().begin();
      std::advance(it, roll(0, static_cast<std::uint32_t>(oracle.size()) - 1));
      const VertexId v = it->first;
      flat.remove(v);
      oracle.remove(v);
    } else {  // compare both selections
      ASSERT_EQ(flat.size(), oracle.size());
      ASSERT_EQ(flat.select_stage1(), oracle.select_stage1())
          << "stage1 diverged at op " << op;
      const EdgeId e_in = roll(0, 50);
      const EdgeId e_out = oracle.sum_c() + roll(0, 8);
      ASSERT_EQ(flat.select_stage2(e_in, e_out),
                oracle.select_stage2(e_in, e_out))
          << "stage2 diverged at op " << op;
    }
  }
}

}  // namespace
}  // namespace tlp
