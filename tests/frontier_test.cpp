// Tests for the Frontier candidate structure — this is where the paper's
// Eq. 7 (μs1) and Eq. 9 (μs2) selection rules live, so the hand-computed
// examples here are the ground truth for the scoring math.
#include <gtest/gtest.h>

#include "core/frontier.hpp"

namespace tlp {
namespace {

TEST(Frontier, StartsEmpty) {
  Frontier f;
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.select_stage1(), kInvalidVertex);
  EXPECT_EQ(f.select_stage2(0, 0), kInvalidVertex);
}

TEST(Frontier, InsertAndConnectionCounting) {
  Frontier f;
  f.add_connection(7, 0.5, /*rdeg=*/4);
  EXPECT_TRUE(f.contains(7));
  EXPECT_EQ(f.connections(7), 1u);
  f.add_connection(7, 0.2, 4);
  EXPECT_EQ(f.connections(7), 2u);
  EXPECT_EQ(f.size(), 1u);
}

TEST(Frontier, ClearAndRemove) {
  Frontier f;
  f.add_connection(1, 0.1, 2);
  f.add_connection(2, 0.9, 3);
  f.remove(2);
  EXPECT_FALSE(f.contains(2));
  EXPECT_EQ(f.select_stage1(), 1u);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.select_stage1(), kInvalidVertex);
}

TEST(FrontierStage1, PicksMaxMu1) {
  Frontier f;
  f.add_connection(10, 0.4, 5);  // μs1(10) = 0.4
  f.add_connection(20, 0.6, 5);  // μs1(20) = 0.6
  f.add_connection(30, 0.5, 5);  // μs1(30) = 0.5
  EXPECT_EQ(f.select_stage1(), 20u);
}

TEST(FrontierStage1, RunningMaxUpgradesCandidate) {
  Frontier f;
  f.add_connection(10, 0.4, 5);
  f.add_connection(20, 0.6, 5);
  // Vertex 10 gains a closer member: its μs1 = max(0.4, 0.9) = 0.9.
  f.add_connection(10, 0.9, 5);
  EXPECT_EQ(f.select_stage1(), 10u);
  // Lower later term must NOT downgrade the max.
  f.add_connection(10, 0.1, 5);
  EXPECT_EQ(f.select_stage1(), 10u);
}

TEST(FrontierStage1, TieBreaksToSmallerId) {
  Frontier f;
  f.add_connection(42, 0.7, 3);
  f.add_connection(17, 0.7, 3);
  EXPECT_EQ(f.select_stage1(), 17u);
}

TEST(FrontierStage1, SelectionSurvivesRemovalOfTop) {
  Frontier f;
  f.add_connection(1, 0.9, 2);
  f.add_connection(2, 0.8, 2);
  f.add_connection(3, 0.7, 2);
  EXPECT_EQ(f.select_stage1(), 1u);
  f.remove(1);
  EXPECT_EQ(f.select_stage1(), 2u);
  f.remove(2);
  EXPECT_EQ(f.select_stage1(), 3u);
}

// Hand-computed μs2 (Eq. 9): maximizing μs2 = 1 - 1/(1+ΔM) is equivalent to
// maximizing M' = (e_in + c) / (e_out + rdeg - 2c).
TEST(FrontierStage2, HandComputedSelection) {
  Frontier f;
  // Candidate A (id 1): c=1, rdeg=4. With e_in=5, e_out=4:
  //   M'(A) = (5+1)/(4+4-2) = 6/6 = 1.0
  f.add_connection(1, 0.0, 4);
  // Candidate B (id 2): c=2, rdeg=3:
  //   M'(B) = (5+2)/(4+3-4) = 7/3 ≈ 2.33  -> winner
  f.add_connection(2, 0.0, 3);
  f.add_connection(2, 0.0, 3);
  // Candidate C (id 3): c=1, rdeg=7 (hub with many external edges):
  //   M'(C) = (5+1)/(4+7-2) = 6/9 ≈ 0.67
  f.add_connection(3, 0.0, 7);
  EXPECT_EQ(f.select_stage2(5, 4), 2u);
}

TEST(FrontierStage2, ZeroDenominatorWins) {
  Frontier f;
  // Candidate 1: c=2, rdeg=2, e_out=2 -> denominator 2+2-4=0 (absorbing it
  // closes the partition boundary entirely): M' = infinity.
  f.add_connection(1, 0.0, 2);
  f.add_connection(1, 0.0, 2);
  // Candidate 2: huge c but nonzero denominator.
  f.add_connection(2, 0.0, 9);
  f.add_connection(2, 0.0, 9);
  f.add_connection(2, 0.0, 9);
  EXPECT_EQ(f.select_stage2(100, 2), 1u);
}

TEST(FrontierStage2, WithinSameCPrefersSmallerResidualDegree) {
  Frontier f;
  f.add_connection(5, 0.0, 9);  // c=1, rdeg=9
  f.add_connection(6, 0.0, 3);  // c=1, rdeg=3 -> smaller denominator, wins
  EXPECT_EQ(f.select_stage2(1, 5), 6u);
}

TEST(FrontierStage2, ExactTieBreaksToLargerC) {
  Frontier f;
  // e_in=2, e_out=2. A: c=1, rdeg=2 -> (3)/(2+2-2)= 3/2.
  f.add_connection(1, 0.0, 2);
  // B: c=2, rdeg=4 -> (4)/(2+4-4) = 4/2 = 2. Not a tie; make a real tie:
  // B: c=2, rdeg=... want (2+2)/(2+r-4) = 3/2 -> r = 14/3 not integer.
  // Use A: c=1 rdeg=4 -> 3/4... construct tie differently:
  // e_in=1, e_out=3. A(c=1, rdeg=3): 2/(3+3-2)=2/4=1/2.
  // B(c=2, rdeg=7): 3/(3+7-4)=3/6=1/2. Tie -> larger c (B, id 2) wins.
  f.clear();
  f.add_connection(1, 0.0, 3);
  f.add_connection(2, 0.0, 7);
  f.add_connection(2, 0.0, 7);
  EXPECT_EQ(f.select_stage2(1, 3), 2u);
}

TEST(FrontierStage2, StageSelectionsAreIndependent) {
  // Stage-2 ranking must ignore μs1 and vice versa.
  Frontier f;
  f.add_connection(1, 0.99, 8);  // great μs1, poor M'
  f.add_connection(2, 0.01, 2);  // poor μs1, great M'
  EXPECT_EQ(f.select_stage1(), 1u);
  EXPECT_EQ(f.select_stage2(3, 3), 2u);
}

}  // namespace
}  // namespace tlp
