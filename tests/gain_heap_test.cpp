// Unit tests for the lazy-invalidation bucket-ladder GainHeap
// (src/refine/gain_heap.hpp): ordering, LIFO tie-breaking, lazy staleness,
// consumption semantics, and the compaction threshold.
#include <gtest/gtest.h>

#include "refine/gain_heap.hpp"

namespace tlp::refine {
namespace {

TEST(GainHeap, PopsHighestGainFirst) {
  ScratchArena arena;
  GainHeap heap(arena, 8);
  heap.update(0, -1);
  heap.update(1, 2);
  heap.update(2, 0);
  heap.update(3, 1);
  const int expected[] = {2, 1, 0, -1};
  for (const int gain : expected) {
    const GainHeap::Top top = heap.pop_best();
    ASSERT_NE(top.id, kInvalidEdge);
    EXPECT_EQ(top.gain, gain);
  }
  EXPECT_EQ(heap.pop_best().id, kInvalidEdge);
}

TEST(GainHeap, UpdateInvalidatesOldEntryLazily) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 2);
  heap.update(0, -2);  // the +2 entry is now stale
  heap.update(1, 1);
  GainHeap::Top top = heap.pop_best();
  EXPECT_EQ(top.id, 1u);  // the stale +2 must be skipped
  EXPECT_EQ(top.gain, 1);
  top = heap.pop_best();
  EXPECT_EQ(top.id, 0u);
  EXPECT_EQ(top.gain, -2);
  EXPECT_GE(heap.stale_pops(), 1u);
}

TEST(GainHeap, RemoveDropsId) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 2);
  heap.update(1, 1);
  EXPECT_TRUE(heap.contains(0));
  heap.remove(0);
  EXPECT_FALSE(heap.contains(0));
  EXPECT_EQ(heap.live(), 1u);
  const GainHeap::Top top = heap.pop_best();
  EXPECT_EQ(top.id, 1u);
  EXPECT_EQ(heap.pop_best().id, kInvalidEdge);
  heap.remove(3);  // never inserted: no-op
  EXPECT_EQ(heap.live(), 0u);
}

TEST(GainHeap, TieBreaksMostRecentlyPushedFirst) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 1);
  heap.update(1, 1);
  heap.update(2, 1);
  EXPECT_EQ(heap.pop_best().id, 2u);  // LIFO within a bucket
  EXPECT_EQ(heap.pop_best().id, 1u);
  EXPECT_EQ(heap.pop_best().id, 0u);
}

TEST(GainHeap, RekeyMovesIdToBackOfItsBucket) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 1);
  heap.update(1, 1);
  heap.update(0, 1);  // rekey to the same gain: 0 is now most recent
  EXPECT_EQ(heap.pop_best().id, 0u);
  EXPECT_EQ(heap.pop_best().id, 1u);
}

TEST(GainHeap, PopConsumes) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 2);
  const GainHeap::Top top = heap.pop_best();
  EXPECT_EQ(top.id, 0u);
  EXPECT_FALSE(heap.contains(0));
  EXPECT_EQ(heap.live(), 0u);
  EXPECT_EQ(heap.pop_best().id, kInvalidEdge);
  heap.update(0, 1);  // caller re-inserts explicitly
  EXPECT_EQ(heap.pop_best().id, 0u);
}

TEST(GainHeap, GainOfReflectsLatestUpdate) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 2);
  EXPECT_EQ(heap.gain_of(0), 2);
  heap.update(0, -1);
  EXPECT_EQ(heap.gain_of(0), -1);
}

TEST(GainHeap, CompactsWhenStaleEntriesDominate) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  // Rekey a handful of ids far past the kCompactFactor * live + kCompactMin
  // threshold; compaction must trigger and live entries must survive it.
  for (int i = 0; i < 1000; ++i) {
    heap.update(0, (i % 5) - 2);
    heap.update(1, ((i + 2) % 5) - 2);
  }
  EXPECT_GE(heap.rebuilds(), 1u);
  EXPECT_LE(heap.entries(),
            GainHeap::kCompactFactor * heap.live() + GainHeap::kCompactMin);
  EXPECT_EQ(heap.live(), 2u);
  EXPECT_NE(heap.pop_best().id, kInvalidEdge);
  EXPECT_NE(heap.pop_best().id, kInvalidEdge);
  EXPECT_EQ(heap.pop_best().id, kInvalidEdge);
}

TEST(GainHeap, ClearForgetsEverythingButStaysUsable) {
  ScratchArena arena;
  GainHeap heap(arena, 4);
  heap.update(0, 2);
  heap.update(1, -2);
  heap.clear();
  EXPECT_EQ(heap.live(), 0u);
  EXPECT_EQ(heap.entries(), 0u);
  EXPECT_EQ(heap.pop_best().id, kInvalidEdge);
  heap.update(1, 0);  // reuse after clear: old entries must never resurface
  const GainHeap::Top top = heap.pop_best();
  EXPECT_EQ(top.id, 1u);
  EXPECT_EQ(top.gain, 0);
}

}  // namespace
}  // namespace tlp::refine
