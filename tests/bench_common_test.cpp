// Tests for bench_common utilities: table rendering, CSV escaping, and the
// environment-variable knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "bench_common/options.hpp"
#include "bench_common/table.hpp"

namespace tlp::bench {
namespace {

/// RAII environment-variable override.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(TableTest, AlignsAndPadsColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"b", "12345"});
  std::ostringstream out;
  const ScopedEnv no_csv("TLP_BENCH_CSV", nullptr);
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| alpha | "), std::string::npos);
  // Numeric cells right-aligned: "12345" flush right in its column.
  EXPECT_NE(text.find("   1.5 |"), std::string::npos);
  EXPECT_NE(text.find(" 12345 |"), std::string::npos);
  EXPECT_EQ(text.find("[csv]"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  std::ostringstream out;
  const ScopedEnv no_csv("TLP_BENCH_CSV", nullptr);
  table.print(out);  // must not crash; missing cells render empty
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecialCells) {
  Table table({"k", "v"});
  table.add_row({"comma,cell", "quote\"cell"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"comma,cell\""), std::string::npos);
  EXPECT_NE(out.str().find("\"quote\"\"cell\""), std::string::npos);
}

TEST(TableTest, EnvTogglesCsvAppendix) {
  Table table({"x"});
  table.add_row({"1"});
  const ScopedEnv csv("TLP_BENCH_CSV", "1");
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("[csv]"), std::string::npos);
  EXPECT_NE(out.str().find("x\n1\n"), std::string::npos);
}

TEST(OptionsTest, DefaultsWhenUnset) {
  const ScopedEnv s1("TLP_BENCH_SCALE", nullptr);
  const ScopedEnv s2("TLP_BENCH_GRAPHS", nullptr);
  const ScopedEnv s3("TLP_BENCH_PS", nullptr);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  EXPECT_EQ(bench_graph_ids().size(), 9u);
  EXPECT_EQ(bench_partition_counts(),
            (std::vector<PartitionId>{10, 15, 20}));
}

TEST(OptionsTest, ParsesOverrides) {
  const ScopedEnv s1("TLP_BENCH_SCALE", "0.25");
  const ScopedEnv s2("TLP_BENCH_GRAPHS", "G1,G5,G9");
  const ScopedEnv s3("TLP_BENCH_PS", "4,8");
  EXPECT_DOUBLE_EQ(bench_scale(), 0.25);
  EXPECT_EQ(bench_graph_ids(),
            (std::vector<std::string>{"G1", "G5", "G9"}));
  EXPECT_EQ(bench_partition_counts(), (std::vector<PartitionId>{4, 8}));
}

TEST(OptionsTest, RejectsBadValues) {
  const ScopedEnv s1("TLP_BENCH_SCALE", "-2");
  EXPECT_THROW((void)bench_scale(), std::runtime_error);
  const ScopedEnv s3("TLP_BENCH_PS", "0");
  EXPECT_THROW((void)bench_partition_counts(), std::runtime_error);
}

}  // namespace
}  // namespace tlp::bench
