// End-to-end integration: generator -> disk -> reader -> partitioner ->
// serializer -> reload -> metrics -> engine, in one flow — the pipeline a
// downstream user actually wires together.
#include <gtest/gtest.h>

#include <filesystem>

#include "bench_common/runner.hpp"
#include "core/refine_rf.hpp"
#include "core/tlp.hpp"
#include "engine/distributed_pagerank.hpp"
#include "engine/pagerank.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "partition/agreement.hpp"
#include "partition/metrics.hpp"
#include "partition/partition_io.hpp"
#include "partition/registry.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

TEST(Integration, FullPipelineRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto graph_path = dir / "tlp_integration_graph.txt";
  const auto parts_path = dir / "tlp_integration.partsb";

  // 1. Generate and persist a community graph.
  const gen::LfrParams params{.n = 2000, .avg_degree = 14.0, .mu = 0.2};
  const gen::LfrGraph lfr_graph = gen::lfr(params, 99);
  io::write_edge_list_file(lfr_graph.graph, graph_path);

  // 2. Reload from disk (no relabeling: ids are already dense).
  const Graph g = io::read_edge_list_file(graph_path, nullptr,
                                          /*relabel=*/false);
  ASSERT_EQ(g.num_edges(), lfr_graph.graph.num_edges());

  // 3. Partition via the registry, refine, validate.
  bench::register_builtin_partitioners();
  PartitionConfig config;
  config.num_partitions = 8;
  EdgePartition partition = make_partitioner("tlp")->partition(g, config);
  validate_or_throw(g, partition, config);
  const double rf_before = replication_factor(g, partition);
  (void)refine_replication(g, partition);
  validate_or_throw(g, partition, config);
  EXPECT_LE(replication_factor(g, partition), rf_before);

  // 4. Serialize, reload, confirm bit-identical assignment.
  io::write_partition_binary_file(partition, parts_path);
  const EdgePartition reloaded = io::read_partition_binary_file(parts_path);
  ASSERT_EQ(reloaded.raw(), partition.raw());
  EXPECT_DOUBLE_EQ(edge_rand_index(partition, reloaded), 1.0);

  // 5. Run both engines on the reloaded partition; results must agree.
  const auto global = engine::pagerank(g, reloaded, 10, 0.85, 0.0);
  const auto local = engine::distributed_pagerank(g, reloaded, 10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NEAR(global.ranks[v], local.ranks[v], 1e-12);
  }

  // 6. Communication is better than a hash placement would be.
  const EdgePartition hash = make_partitioner("random")->partition(g, config);
  const auto hash_run = engine::pagerank(g, hash, 10, 0.85, 0.0);
  EXPECT_LT(global.comm.total_messages(), hash_run.comm.total_messages());

  std::filesystem::remove(graph_path);
  std::filesystem::remove(parts_path);
}

TEST(Integration, EveryRegisteredAlgorithmSurvivesThePipeline) {
  bench::register_builtin_partitioners();
  const Graph g = gen::dcsbm(1500, 12000, 2.1, 12, 0.6, 7);
  PartitionConfig config;
  config.num_partitions = 6;
  for (const std::string& name : registered_partitioners()) {
    const bench::RunResult r =
        bench::run_partitioner(*make_partitioner(name), g, config);
    EXPECT_TRUE(r.valid) << name;
    EXPECT_GE(r.rf, 1.0) << name;
    EXPECT_LE(r.rf, 6.0) << name;
    // Everything must beat the theoretical worst case p by a wide margin on
    // a community graph... except nothing should even be close.
    EXPECT_LT(r.rf, 5.5) << name;
  }
}

}  // namespace
}  // namespace tlp
