// Tests for SNAP text and binary graph I/O, including failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/io.hpp"

namespace tlp {
namespace {

TEST(EdgeListReader, ParsesSnapFormat) {
  std::istringstream in(
      "# Directed graph: example\n"
      "# Nodes: 4 Edges: 4\n"
      "0\t1\n"
      "1\t2\n"
      "2 3\n"
      "\n"
      "% percent comments too\n"
      "3\t0\n");
  const Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(EdgeListReader, CollapsesDirectedDuplicates) {
  std::istringstream in("0 1\n1 0\n1 1\n");
  BuildReport report;
  const Graph g = io::read_edge_list(in, &report);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(report.duplicate_edges, 1u);
  EXPECT_EQ(report.self_loops, 1u);
}

TEST(EdgeListReader, RelabelsSparseIds) {
  std::istringstream in("30000000 40000000\n");
  const Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(EdgeListReader, RejectsMalformedLine) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(io::read_edge_list(in), std::runtime_error);
}

TEST(EdgeListReader, RejectsMissingSecondId) {
  std::istringstream in("42\n");
  EXPECT_THROW(io::read_edge_list(in), std::runtime_error);
}

TEST(EdgeListReader, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# only a comment\n");
  const Graph g = io::read_edge_list(in);
  EXPECT_TRUE(g.empty());
}

TEST(EdgeListRoundTrip, PreservesGraph) {
  const Graph original = gen::erdos_renyi(50, 120, /*seed=*/7);
  std::stringstream buffer;
  io::write_edge_list(original, buffer);
  const Graph reloaded =
      io::read_edge_list(buffer, nullptr, /*relabel=*/false);
  ASSERT_EQ(reloaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(reloaded.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_TRUE(reloaded.has_edge(original.edge(e).u, original.edge(e).v));
  }
}

TEST(BinaryRoundTrip, PreservesGraphExactly) {
  const Graph original = gen::barabasi_albert(100, 3, /*seed=*/11);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(original, buffer);
  const Graph reloaded = io::read_binary(buffer);
  ASSERT_EQ(reloaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(reloaded.num_edges(), original.num_edges());
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(reloaded.edge(e), original.edge(e));
  }
}

TEST(BinaryReader, RejectsBadMagic) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  buffer << "NOPE and some trailing bytes";
  EXPECT_THROW(io::read_binary(buffer), std::runtime_error);
}

TEST(BinaryReader, RejectsTruncatedPayload) {
  const Graph original = gen::erdos_renyi(20, 30, /*seed=*/3);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(original, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << full.substr(0, full.size() / 2);
  EXPECT_THROW(io::read_binary(cut), std::runtime_error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(io::read_edge_list_file("/nonexistent/path/graph.txt"),
               std::runtime_error);
  EXPECT_THROW(io::read_binary_file("/nonexistent/path/graph.bin"),
               std::runtime_error);
}

TEST(FileIo, WriteReadTempFiles) {
  const Graph g = gen::cycle_graph(12);
  const auto dir = std::filesystem::temp_directory_path();
  const auto text_path = dir / "tlp_io_test_graph.txt";
  const auto bin_path = dir / "tlp_io_test_graph.bin";

  io::write_edge_list_file(g, text_path);
  io::write_binary_file(g, bin_path);
  const Graph from_text = io::read_edge_list_file(text_path);
  const Graph from_bin = io::read_binary_file(bin_path);
  EXPECT_EQ(from_text.num_edges(), g.num_edges());
  EXPECT_EQ(from_bin.num_edges(), g.num_edges());

  std::filesystem::remove(text_path);
  std::filesystem::remove(bin_path);
}

}  // namespace
}  // namespace tlp
