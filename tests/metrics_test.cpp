// Tests for RF, balance, modularity, and the paper's Claim-1 identity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"

namespace tlp {
namespace {

/// Path 0-1-2-3 with edges e0=(0,1), e1=(1,2), e2=(2,3) split [e0 | e1,e2].
EdgePartition path_split() {
  EdgePartition p(2, 3);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 1);
  return p;
}

TEST(ReplicationFactor, PathSplit) {
  const Graph g = gen::path_graph(4);
  const EdgePartition p = path_split();
  // P0 = {0,1}, P1 = {1,2,3}; vertex 1 replicated twice.
  const auto replicas = replica_counts(g, p);
  EXPECT_EQ(replicas[0], 1u);
  EXPECT_EQ(replicas[1], 2u);
  EXPECT_EQ(replicas[2], 1u);
  EXPECT_EQ(replicas[3], 1u);
  const auto vcounts = vertex_counts(g, p);
  EXPECT_EQ(vcounts[0], 2u);
  EXPECT_EQ(vcounts[1], 3u);
  EXPECT_DOUBLE_EQ(replication_factor(g, p), 5.0 / 4.0);
}

TEST(ReplicationFactor, SinglePartitionIsOne) {
  const Graph g = gen::complete_graph(5);
  EdgePartition p(1, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) p.assign(e, 0);
  EXPECT_DOUBLE_EQ(replication_factor(g, p), 1.0);
}

TEST(ReplicationFactor, IsolatedVerticesExcluded) {
  // 1 edge + 2 isolated vertices: RF over covered vertices only.
  const Graph g = Graph::from_edges(4, {{0, 1}});
  EdgePartition p(2, 1);
  p.assign(0, 0);
  EXPECT_DOUBLE_EQ(replication_factor(g, p), 1.0);
}

TEST(ReplicationFactor, WorstCaseStarAllPartitionsDistinct) {
  const Graph g = gen::star_graph(4);  // center 0, leaves 1..4
  EdgePartition p(4, 4);
  for (EdgeId e = 0; e < 4; ++e) p.assign(e, static_cast<PartitionId>(e));
  // Center replicated 4x, each leaf once: RF = (4 + 4) / 5.
  EXPECT_DOUBLE_EQ(replication_factor(g, p), 8.0 / 5.0);
}

TEST(BalanceFactor, PerfectAndSkewed) {
  EdgePartition even(2, 4);
  even.assign(0, 0);
  even.assign(1, 0);
  even.assign(2, 1);
  even.assign(3, 1);
  EXPECT_DOUBLE_EQ(balance_factor(even), 1.0);

  EdgePartition skew(2, 4);
  for (EdgeId e = 0; e < 4; ++e) skew.assign(e, 0);
  EXPECT_DOUBLE_EQ(balance_factor(skew), 2.0);
}

TEST(BalanceFactor, EmptyPartitionIsNeutral) {
  EXPECT_DOUBLE_EQ(balance_factor(EdgePartition(3, EdgeId{0})), 1.0);
}

TEST(Modularity, PathSplitValues) {
  const Graph g = gen::path_graph(4);
  const auto mods = partition_modularity(g, path_split());
  // P0 = {e0}: V(P0)={0,1}; external = e1 (touches vertex 1). M = 1/1.
  EXPECT_EQ(mods[0].internal_edges, 1u);
  EXPECT_EQ(mods[0].external_edges, 1u);
  EXPECT_DOUBLE_EQ(mods[0].value(), 1.0);
  // P1 = {e1,e2}: V(P1)={1,2,3}; external = e0. M = 2/1.
  EXPECT_EQ(mods[1].internal_edges, 2u);
  EXPECT_EQ(mods[1].external_edges, 1u);
  EXPECT_DOUBLE_EQ(mods[1].value(), 2.0);
}

TEST(Modularity, InfiniteWhenIsolatedPartition) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EdgePartition p(2, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  const auto mods = partition_modularity(g, p);
  EXPECT_TRUE(std::isinf(mods[0].value()));
  EXPECT_TRUE(std::isinf(mods[1].value()));
}

TEST(Modularity, EmptyPartitionIsZero) {
  const Graph g = gen::path_graph(3);
  EdgePartition p(2, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  const auto mods = partition_modularity(g, p);
  EXPECT_DOUBLE_EQ(mods[1].value(), 0.0);
}

// Claim 1 (Eq. 6): on a d-regular graph with an exactly balanced partition,
// RF = 1 + (1/p) * sum 1/M(P_k) holds exactly when every external edge has
// exactly one endpoint in V(P_k) (true for contiguous arcs of a cycle).
TEST(Claim1, ExactOnCycleArcs) {
  const VertexId n = 12;
  const Graph g = gen::cycle_graph(n);
  const PartitionId p = 3;
  EdgePartition part(p, g.num_edges());
  // Cycle edges from gen: (i, i+1) for i<n-1, then (0, n-1). Assign arcs of
  // 4 consecutive path edges per partition; the closing edge joins the last.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.assign(e, static_cast<PartitionId>(std::min<EdgeId>(e / 4, p - 1)));
  }
  const double rf = replication_factor(g, part);
  const double predicted = claim1_predicted_rf(g, part);
  EXPECT_NEAR(rf, predicted, 1e-12);
}

// On irregular graphs the identity is an averaging approximation; it must
// still track the true RF closely and preserve ordering.
TEST(Claim1, ApproximatesOnIrregularGraphs) {
  const Graph g = gen::barabasi_albert(400, 3, /*seed=*/21);
  PartitionConfig config;
  config.num_partitions = 8;
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config);
  const double rf = replication_factor(g, part);
  const double predicted = claim1_predicted_rf(g, part);
  EXPECT_GT(predicted, 1.0);
  EXPECT_LT(std::abs(rf - predicted) / rf, 0.5);  // same ballpark
}

// Negative correlation direction of Claim 1: higher modularity partitions
// (TLP) must predict and achieve lower RF than hash partitions (Random).
TEST(Claim1, ModularityOrderingMatchesRfOrdering) {
  const Graph g = gen::sbm(600, 4000, 12, 0.9, /*seed=*/33);
  PartitionConfig config;
  config.num_partitions = 6;
  const TlpPartitioner tlp;
  const EdgePartition good = tlp.partition(g, config);

  EdgePartition bad(6, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    bad.assign(e, static_cast<PartitionId>(e % 6));
  }

  const auto mean_inverse_modularity = [&](const EdgePartition& part) {
    const auto mods = partition_modularity(g, part);
    double sum = 0.0;
    for (const auto& m : mods) {
      if (m.value() > 0.0) sum += 1.0 / m.value();
    }
    return sum / static_cast<double>(mods.size());
  };

  EXPECT_LT(replication_factor(g, good), replication_factor(g, bad));
  EXPECT_LT(mean_inverse_modularity(good), mean_inverse_modularity(bad));
}

TEST(EdgeCut, CountsCrossPartEdges) {
  const Graph g = gen::path_graph(4);
  EXPECT_EQ(edge_cut(g, {0, 0, 1, 1}), 1u);
  EXPECT_EQ(edge_cut(g, {0, 1, 0, 1}), 3u);
  EXPECT_EQ(edge_cut(g, {0, 0, 0, 0}), 0u);
}

}  // namespace
}  // namespace tlp
