// Tests for the concurrent multi-seed TLP extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "core/multi_tlp.hpp"
#include "partition/run_context.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(MultiTlp, CompleteAndInRangeOnVariousGraphs) {
  const MultiTlpPartitioner multi;
  for (const Graph& g :
       {gen::path_graph(40), gen::star_graph(40), gen::complete_graph(12),
        gen::caveman_graph(6, 6), gen::erdos_renyi(200, 800, 5),
        gen::barabasi_albert(200, 3, 6), gen::sbm(240, 1400, 8, 0.85, 7)}) {
    const auto config = config_for(4);
    const EdgePartition part = multi.partition(g, config);
    EXPECT_TRUE(validate(g, part, config).ok()) << g.summary();
  }
}

TEST(MultiTlp, BitIdenticalAcrossThreadCounts) {
  const Graph g = gen::sbm(600, 4200, 17, 0.88, 11);
  const auto config = config_for(9, 7);
  RunContext ctx1;
  MultiTlpOptions opts;
  opts.num_threads = 1;
  const EdgePartition base =
      MultiTlpPartitioner{opts}.partition(g, config, ctx1);
  auto counters_sans_threads = [](const RunContext& ctx) {
    auto c = ctx.telemetry().counters();
    c.erase("threads");  // the only legitimately thread-count-dependent key
    c.erase("runs");
    return c;
  };
  for (const std::size_t threads : {2u, 8u}) {
    RunContext ctx;
    MultiTlpOptions o;
    o.num_threads = threads;
    const EdgePartition part =
        MultiTlpPartitioner{o}.partition(g, config, ctx);
    EXPECT_EQ(part.raw(), base.raw()) << threads << " threads";
    EXPECT_EQ(counters_sans_threads(ctx), counters_sans_threads(ctx1))
        << threads << " threads";
    EXPECT_EQ(ctx.telemetry().all_series(), ctx1.telemetry().all_series())
        << threads << " threads";
    EXPECT_EQ(ctx.telemetry().counter("threads"),
              static_cast<double>(std::min<std::size_t>(threads, 9)));
  }
}

TEST(MultiTlp, HardwareThreadsMatchInline) {
  const Graph g = gen::barabasi_albert(300, 4, 19);
  const auto config = config_for(6, 5);
  MultiTlpOptions inline_opts;  // num_threads = 1
  MultiTlpOptions hw_opts;
  hw_opts.num_threads = 0;  // hardware_concurrency, capped at p
  const EdgePartition a =
      MultiTlpPartitioner{inline_opts}.partition(g, config);
  const EdgePartition b = MultiTlpPartitioner{hw_opts}.partition(g, config);
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(MultiTlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(250, 3, 9);
  const MultiTlpPartitioner multi;
  const EdgePartition a = multi.partition(g, config_for(5, 3));
  const EdgePartition b = multi.partition(g, config_for(5, 3));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(MultiTlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)MultiTlpPartitioner{}.partition(g, config_for(0)),
               std::invalid_argument);
}

TEST(MultiTlp, SinglePartitionDegenerates) {
  const Graph g = gen::erdos_renyi(60, 200, 11);
  const EdgePartition part =
      MultiTlpPartitioner{}.partition(g, config_for(1));
  EXPECT_DOUBLE_EQ(replication_factor(g, part), 1.0);
}

TEST(MultiTlp, ConcurrentGrowthIsAtLeastAsBalancedAsSequential) {
  // The motivation for this variant: the sequential algorithm's last round
  // inherits scraps; concurrent growth competes fairly from the start.
  const Graph g = gen::sbm(900, 7200, 18, 0.9, 13);
  const auto config = config_for(9);
  const EdgePartition multi = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, multi, config).ok());
  EXPECT_LT(balance_factor(multi), 1.35);
}

TEST(MultiTlp, QualityComparableToSequentialOnCommunities) {
  const Graph g = gen::caveman_graph(8, 8);
  const auto config = config_for(8);
  const double rf_multi = replication_factor(
      g, MultiTlpPartitioner{}.partition(g, config));
  const double rf_seq =
      replication_factor(g, TlpPartitioner{}.partition(g, config));
  // Same ballpark; neither should blow up on planted communities.
  EXPECT_LT(rf_multi, 1.6);
  EXPECT_LT(rf_multi, rf_seq + 0.5);
}

TEST(MultiTlp, TelemetryAggregatesAcrossPartitions) {
  const Graph g = gen::erdos_renyi(300, 1200, 15);
  const MultiTlpPartitioner multi;
  RunContext ctx;
  const auto config = config_for(6);
  const EdgePartition part = multi.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  const Telemetry& t = ctx.telemetry();
  const auto* edges = t.series("round_edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->size(), 6u);
  EXPECT_GT(t.counter("stage1_joins") + t.counter("stage2_joins"), 0.0);
  double total = 0.0;
  for (const double e : *edges) total += e;
  EXPECT_EQ(total + t.counter("spilled_edges"),
            static_cast<double>(g.num_edges()));
}

TEST(MultiTlp, NoOvershootStaysWithinCapacityMostly) {
  MultiTlpOptions options;
  options.allow_overshoot = false;
  const MultiTlpPartitioner multi(options);
  const Graph g = gen::erdos_renyi(200, 1000, 17);
  const auto config = config_for(5);
  const EdgePartition part = multi.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
  // With hard caps everywhere, only the spill can exceed C.
  const EdgeId capacity = config.capacity(g.num_edges());
  for (const EdgeId load : part.edge_counts()) {
    EXPECT_LE(load, capacity + capacity / 4);
  }
}

TEST(MultiTlp, DisconnectedGraphFullyCovered) {
  EdgeList edges;
  for (VertexId i = 0; i < 30; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(60, std::move(edges));
  const auto config = config_for(3);
  const EdgePartition part = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

}  // namespace
}  // namespace tlp
