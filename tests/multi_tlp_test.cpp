// Tests for the concurrent multi-seed TLP extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/multi_tlp.hpp"
#include "partition/run_context.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(MultiTlp, CompleteAndInRangeOnVariousGraphs) {
  const MultiTlpPartitioner multi;
  for (const Graph& g :
       {gen::path_graph(40), gen::star_graph(40), gen::complete_graph(12),
        gen::caveman_graph(6, 6), gen::erdos_renyi(200, 800, 5),
        gen::barabasi_albert(200, 3, 6), gen::sbm(240, 1400, 8, 0.85, 7)}) {
    const auto config = config_for(4);
    const EdgePartition part = multi.partition(g, config);
    EXPECT_TRUE(validate(g, part, config).ok()) << g.summary();
  }
}

// Strips the telemetry keys that are allowed to vary with the schedule:
// the resolved worker count plus the work-stealing scheduler's wall-clock
// instrumentation (docs/THREADING.md). Every OTHER counter/series must be
// bit-identical across worker counts and steal settings.
std::map<std::string, double, std::less<>> scheduler_invariant_counters(
    const RunContext& ctx) {
  auto c = ctx.telemetry().counters();
  for (const char* key :
       {"threads", "runs", "steal", "steals", "steal_failures", "imbalance"}) {
    c.erase(key);
  }
  return c;
}

std::map<std::string, std::vector<double>, std::less<>>
scheduler_invariant_series(const RunContext& ctx) {
  auto s = ctx.telemetry().all_series();
  s.erase("worker_busy");  // wall-clock, W entries per super-step
  return s;
}

TEST(MultiTlp, BitIdenticalAcrossThreadCountsAndStealSettings) {
  const Graph g = gen::sbm(600, 4200, 17, 0.88, 11);
  const auto config = config_for(9, 7);
  RunContext ctx1;
  MultiTlpOptions opts;
  opts.num_threads = 1;
  const EdgePartition base =
      MultiTlpPartitioner{opts}.partition(g, config, ctx1);
  for (const std::size_t threads : {2u, 8u}) {
    for (const bool steal : {false, true}) {
      RunContext ctx;
      MultiTlpOptions o;
      o.num_threads = threads;
      o.steal = steal;
      const EdgePartition part =
          MultiTlpPartitioner{o}.partition(g, config, ctx);
      EXPECT_EQ(part.raw(), base.raw())
          << threads << " threads, steal " << steal;
      EXPECT_EQ(scheduler_invariant_counters(ctx),
                scheduler_invariant_counters(ctx1))
          << threads << " threads, steal " << steal;
      EXPECT_EQ(scheduler_invariant_series(ctx),
                scheduler_invariant_series(ctx1))
          << threads << " threads, steal " << steal;
      EXPECT_EQ(ctx.telemetry().counter("threads"),
                static_cast<double>(std::min<std::size_t>(threads, 9)));
      EXPECT_EQ(ctx.telemetry().counter("steal"), steal ? 1.0 : 0.0);
    }
  }
}

TEST(MultiTlp, HardwareThreadsMatchInline) {
  const Graph g = gen::barabasi_albert(300, 4, 19);
  const auto config = config_for(6, 5);
  MultiTlpOptions inline_opts;  // num_threads = 1
  const EdgePartition a =
      MultiTlpPartitioner{inline_opts}.partition(g, config);
  for (const bool steal : {false, true}) {
    MultiTlpOptions hw_opts;
    hw_opts.num_threads = 0;  // hardware_concurrency, capped at p
    hw_opts.steal = steal;
    const EdgePartition b =
        MultiTlpPartitioner{hw_opts}.partition(g, config);
    EXPECT_EQ(a.raw(), b.raw()) << "steal " << steal;
  }
}

TEST(MultiTlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(250, 3, 9);
  const MultiTlpPartitioner multi;
  const EdgePartition a = multi.partition(g, config_for(5, 3));
  const EdgePartition b = multi.partition(g, config_for(5, 3));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(MultiTlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)MultiTlpPartitioner{}.partition(g, config_for(0)),
               std::invalid_argument);
}

TEST(MultiTlp, SinglePartitionDegenerates) {
  const Graph g = gen::erdos_renyi(60, 200, 11);
  const EdgePartition part =
      MultiTlpPartitioner{}.partition(g, config_for(1));
  EXPECT_DOUBLE_EQ(replication_factor(g, part), 1.0);
}

TEST(MultiTlp, ConcurrentGrowthIsAtLeastAsBalancedAsSequential) {
  // The motivation for this variant: the sequential algorithm's last round
  // inherits scraps; concurrent growth competes fairly from the start.
  const Graph g = gen::sbm(900, 7200, 18, 0.9, 13);
  const auto config = config_for(9);
  const EdgePartition multi = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, multi, config).ok());
  EXPECT_LT(balance_factor(multi), 1.35);
}

TEST(MultiTlp, QualityComparableToSequentialOnCommunities) {
  const Graph g = gen::caveman_graph(8, 8);
  const auto config = config_for(8);
  const double rf_multi = replication_factor(
      g, MultiTlpPartitioner{}.partition(g, config));
  const double rf_seq =
      replication_factor(g, TlpPartitioner{}.partition(g, config));
  // Same ballpark; neither should blow up on planted communities.
  EXPECT_LT(rf_multi, 1.6);
  EXPECT_LT(rf_multi, rf_seq + 0.5);
}

TEST(MultiTlp, TelemetryAggregatesAcrossPartitions) {
  const Graph g = gen::erdos_renyi(300, 1200, 15);
  const MultiTlpPartitioner multi;
  RunContext ctx;
  const auto config = config_for(6);
  const EdgePartition part = multi.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  const Telemetry& t = ctx.telemetry();
  const auto* edges = t.series("round_edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->size(), 6u);
  EXPECT_GT(t.counter("stage1_joins") + t.counter("stage2_joins"), 0.0);
  double total = 0.0;
  for (const double e : *edges) total += e;
  EXPECT_EQ(total + t.counter("spilled_edges"),
            static_cast<double>(g.num_edges()));
}

TEST(MultiTlp, NoOvershootStaysWithinCapacityMostly) {
  MultiTlpOptions options;
  options.allow_overshoot = false;
  const MultiTlpPartitioner multi(options);
  const Graph g = gen::erdos_renyi(200, 1000, 17);
  const auto config = config_for(5);
  const EdgePartition part = multi.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
  // With hard caps everywhere, only the spill can exceed C.
  const EdgeId capacity = config.capacity(g.num_edges());
  for (const EdgeId load : part.edge_counts()) {
    EXPECT_LE(load, capacity + capacity / 4);
  }
}

// Deterministic half of the steal regression: on a skewed (power-law +
// communities) graph, output bytes must not depend on the steal setting,
// and the scheduler telemetry must be well-formed. The imbalance *drop*
// itself is a wall-clock property, asserted in the hardware-gated test
// below.
TEST(MultiTlp, StealKeepsBytesIdenticalAndReportsSchedulerTelemetry) {
  const Graph g = gen::dcsbm(4000, 24000, 2.2, 6, 0.6, 21);
  const auto config = config_for(8, 3);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  for (const bool steal : {false, true}) {
    MultiTlpOptions o;
    o.num_threads = 4;
    o.steal = steal;
    RunContext ctx;
    const EdgePartition part =
        MultiTlpPartitioner{o}.partition(g, config, ctx);
    EXPECT_EQ(part.raw(), base.raw()) << "steal " << steal;
    const Telemetry& t = ctx.telemetry();
    EXPECT_EQ(t.counter("steal"), steal ? 1.0 : 0.0);
    EXPECT_GE(t.counter("imbalance"), 1.0);
    const auto* busy = t.series("worker_busy");
    ASSERT_NE(busy, nullptr);
    ASSERT_FALSE(busy->empty());
    // 4 entries (one per worker) per committed super-step; the final
    // no-progress step commits nothing, so the series may run one step
    // short of the super_steps counter.
    EXPECT_EQ(busy->size() % 4, 0u);
    EXPECT_LE(static_cast<double>(busy->size()),
              t.counter("super_steps") * 4.0);
    if (steal) {
      // Over hundreds of super-steps some worker always drains its deque
      // while another's is still pending, on any host.
      EXPECT_GT(t.counter("steals"), 0.0);
    } else {
      EXPECT_EQ(t.counter("steals"), 0.0);
      EXPECT_EQ(t.counter("steal_failures"), 0.0);
    }
  }
}

// The ROADMAP question this answers: with static ownership (k % W) one
// worker's hot partitions serialize a super-step; stealing spreads pending
// partition-tasks and pulls max/mean worker busy time toward 1. The
// assertion is about wall-clock, so it needs real parallelism — below 4
// hardware threads (e.g. a single-core CI container) the measured "busy"
// intervals are preemption noise and the test skips.
TEST(MultiTlp, StealReducesImbalanceOnSkewedPartitionSizes) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads for meaningful busy times";
  }
  const Graph g = gen::dcsbm(20000, 120000, 2.2, 8, 0.6, 33);
  const auto config = config_for(12, 5);
  auto run = [&](bool steal) {
    MultiTlpOptions o;
    o.num_threads = 4;
    o.steal = steal;
    RunContext ctx;
    const EdgePartition part =
        MultiTlpPartitioner{o}.partition(g, config, ctx);
    return std::tuple{part.raw(), ctx.telemetry().counter("imbalance"),
                      ctx.telemetry().counter("steals")};
  };
  const auto [bytes_off, imbalance_off, steals_off] = run(false);
  const auto [bytes_on, imbalance_on, steals_on] = run(true);
  EXPECT_EQ(bytes_off, bytes_on);  // only the schedule may move
  EXPECT_EQ(steals_off, 0.0);
  EXPECT_GT(steals_on, 0.0);
  // Stealing must beat the static schedule's imbalance — unless the static
  // schedule was already essentially flat (within 2% of perfect), where
  // measurement noise dominates.
  EXPECT_LT(imbalance_on, std::max(imbalance_off, 1.02));
}

TEST(MultiTlp, DisconnectedGraphFullyCovered) {
  EdgeList edges;
  for (VertexId i = 0; i < 30; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(60, std::move(edges));
  const auto config = config_for(3);
  const EdgePartition part = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

}  // namespace
}  // namespace tlp
