// Tests for the concurrent multi-seed TLP extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/multi_tlp.hpp"
#include "partition/run_context.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(MultiTlp, CompleteAndInRangeOnVariousGraphs) {
  const MultiTlpPartitioner multi;
  for (const Graph& g :
       {gen::path_graph(40), gen::star_graph(40), gen::complete_graph(12),
        gen::caveman_graph(6, 6), gen::erdos_renyi(200, 800, 5),
        gen::barabasi_albert(200, 3, 6), gen::sbm(240, 1400, 8, 0.85, 7)}) {
    const auto config = config_for(4);
    const EdgePartition part = multi.partition(g, config);
    EXPECT_TRUE(validate(g, part, config).ok()) << g.summary();
  }
}

// Strips the telemetry keys that are allowed to vary with the schedule or
// the claim-state topology: the resolved worker count, the work-stealing
// scheduler's wall-clock instrumentation, and the sharded claim protocol's
// transport accounting (docs/THREADING.md). Every OTHER counter/series
// must be bit-identical across worker counts, steal settings AND shard
// counts.
std::map<std::string, double, std::less<>> scheduler_invariant_counters(
    const RunContext& ctx) {
  auto c = ctx.telemetry().counters();
  for (const char* key :
       {"threads", "runs", "steal", "steals", "steal_failures", "imbalance",
        "shards", "messages_sent", "claim_rounds", "transport",
        "bytes_on_wire", "frames_sent", "barrier_wait_s",
        "backpressure_stalls"}) {
    c.erase(key);
  }
  return c;
}

std::map<std::string, std::vector<double>, std::less<>>
scheduler_invariant_series(const RunContext& ctx) {
  auto s = ctx.telemetry().all_series();
  s.erase("worker_busy");  // wall-clock, W entries per super-step
  s.erase("shard_busy");   // wall-clock, S entries, sharded mode only
  return s;
}

TEST(MultiTlp, BitIdenticalAcrossThreadCountsAndStealSettings) {
  const Graph g = gen::sbm(600, 4200, 17, 0.88, 11);
  const auto config = config_for(9, 7);
  RunContext ctx1;
  MultiTlpOptions opts;
  opts.num_threads = 1;
  const EdgePartition base =
      MultiTlpPartitioner{opts}.partition(g, config, ctx1);
  for (const std::size_t threads : {2u, 8u}) {
    for (const bool steal : {false, true}) {
      RunContext ctx;
      MultiTlpOptions o;
      o.num_threads = threads;
      o.steal = steal;
      const EdgePartition part =
          MultiTlpPartitioner{o}.partition(g, config, ctx);
      EXPECT_EQ(part.raw(), base.raw())
          << threads << " threads, steal " << steal;
      EXPECT_EQ(scheduler_invariant_counters(ctx),
                scheduler_invariant_counters(ctx1))
          << threads << " threads, steal " << steal;
      EXPECT_EQ(scheduler_invariant_series(ctx),
                scheduler_invariant_series(ctx1))
          << threads << " threads, steal " << steal;
      EXPECT_EQ(ctx.telemetry().counter("threads"),
                static_cast<double>(std::min<std::size_t>(threads, 9)));
      EXPECT_EQ(ctx.telemetry().counter("steal"), steal ? 1.0 : 0.0);
    }
  }
}

TEST(MultiTlp, HardwareThreadsMatchInline) {
  const Graph g = gen::barabasi_albert(300, 4, 19);
  const auto config = config_for(6, 5);
  MultiTlpOptions inline_opts;  // num_threads = 1
  const EdgePartition a =
      MultiTlpPartitioner{inline_opts}.partition(g, config);
  for (const bool steal : {false, true}) {
    MultiTlpOptions hw_opts;
    hw_opts.num_threads = 0;  // hardware_concurrency, capped at p
    hw_opts.steal = steal;
    const EdgePartition b =
        MultiTlpPartitioner{hw_opts}.partition(g, config);
    EXPECT_EQ(a.raw(), b.raw()) << "steal " << steal;
  }
}

TEST(MultiTlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(250, 3, 9);
  const MultiTlpPartitioner multi;
  const EdgePartition a = multi.partition(g, config_for(5, 3));
  const EdgePartition b = multi.partition(g, config_for(5, 3));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(MultiTlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)MultiTlpPartitioner{}.partition(g, config_for(0)),
               std::invalid_argument);
}

TEST(MultiTlp, SinglePartitionDegenerates) {
  const Graph g = gen::erdos_renyi(60, 200, 11);
  const EdgePartition part =
      MultiTlpPartitioner{}.partition(g, config_for(1));
  EXPECT_DOUBLE_EQ(replication_factor(g, part), 1.0);
}

TEST(MultiTlp, ConcurrentGrowthIsAtLeastAsBalancedAsSequential) {
  // The motivation for this variant: the sequential algorithm's last round
  // inherits scraps; concurrent growth competes fairly from the start.
  const Graph g = gen::sbm(900, 7200, 18, 0.9, 13);
  const auto config = config_for(9);
  const EdgePartition multi = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, multi, config).ok());
  EXPECT_LT(balance_factor(multi), 1.35);
}

TEST(MultiTlp, QualityComparableToSequentialOnCommunities) {
  const Graph g = gen::caveman_graph(8, 8);
  const auto config = config_for(8);
  const double rf_multi = replication_factor(
      g, MultiTlpPartitioner{}.partition(g, config));
  const double rf_seq =
      replication_factor(g, TlpPartitioner{}.partition(g, config));
  // Same ballpark; neither should blow up on planted communities.
  EXPECT_LT(rf_multi, 1.6);
  EXPECT_LT(rf_multi, rf_seq + 0.5);
}

TEST(MultiTlp, TelemetryAggregatesAcrossPartitions) {
  const Graph g = gen::erdos_renyi(300, 1200, 15);
  const MultiTlpPartitioner multi;
  RunContext ctx;
  const auto config = config_for(6);
  const EdgePartition part = multi.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  const Telemetry& t = ctx.telemetry();
  const auto* edges = t.series("round_edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->size(), 6u);
  EXPECT_GT(t.counter("stage1_joins") + t.counter("stage2_joins"), 0.0);
  double total = 0.0;
  for (const double e : *edges) total += e;
  EXPECT_EQ(total + t.counter("spilled_edges"),
            static_cast<double>(g.num_edges()));
}

TEST(MultiTlp, NoOvershootStaysWithinCapacityMostly) {
  MultiTlpOptions options;
  options.allow_overshoot = false;
  const MultiTlpPartitioner multi(options);
  const Graph g = gen::erdos_renyi(200, 1000, 17);
  const auto config = config_for(5);
  const EdgePartition part = multi.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
  // With hard caps everywhere, only the spill can exceed C.
  const EdgeId capacity = config.capacity(g.num_edges());
  for (const EdgeId load : part.edge_counts()) {
    EXPECT_LE(load, capacity + capacity / 4);
  }
}

// Deterministic half of the steal regression: on a skewed (power-law +
// communities) graph, output bytes must not depend on the steal setting,
// and the scheduler telemetry must be well-formed. The imbalance *drop*
// itself is a wall-clock property, asserted in the hardware-gated test
// below.
TEST(MultiTlp, StealKeepsBytesIdenticalAndReportsSchedulerTelemetry) {
  const Graph g = gen::dcsbm(4000, 24000, 2.2, 6, 0.6, 21);
  const auto config = config_for(8, 3);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  for (const bool steal : {false, true}) {
    MultiTlpOptions o;
    o.num_threads = 4;
    o.steal = steal;
    RunContext ctx;
    const EdgePartition part =
        MultiTlpPartitioner{o}.partition(g, config, ctx);
    EXPECT_EQ(part.raw(), base.raw()) << "steal " << steal;
    const Telemetry& t = ctx.telemetry();
    EXPECT_EQ(t.counter("steal"), steal ? 1.0 : 0.0);
    EXPECT_GE(t.counter("imbalance"), 1.0);
    const auto* busy = t.series("worker_busy");
    ASSERT_NE(busy, nullptr);
    ASSERT_FALSE(busy->empty());
    // 4 entries (one per worker) per committed super-step; the final
    // no-progress step commits nothing, so the series may run one step
    // short of the super_steps counter.
    EXPECT_EQ(busy->size() % 4, 0u);
    EXPECT_LE(static_cast<double>(busy->size()),
              t.counter("super_steps") * 4.0);
    if (steal) {
      // Over hundreds of super-steps some worker always drains its deque
      // while another's is still pending, on any host.
      EXPECT_GT(t.counter("steals"), 0.0);
    } else {
      EXPECT_EQ(t.counter("steals"), 0.0);
      EXPECT_EQ(t.counter("steal_failures"), 0.0);
    }
  }
}

// The ROADMAP question this answers: with static ownership (k % W) one
// worker's hot partitions serialize a super-step; stealing spreads pending
// partition-tasks and pulls max/mean worker busy time toward 1. The
// assertion is about wall-clock, so it needs real parallelism — below 4
// hardware threads (e.g. a single-core CI container) the measured "busy"
// intervals are preemption noise and the test skips.
TEST(MultiTlp, StealReducesImbalanceOnSkewedPartitionSizes) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads for meaningful busy times";
  }
  const Graph g = gen::dcsbm(20000, 120000, 2.2, 8, 0.6, 33);
  const auto config = config_for(12, 5);
  auto run = [&](bool steal) {
    MultiTlpOptions o;
    o.num_threads = 4;
    o.steal = steal;
    RunContext ctx;
    const EdgePartition part =
        MultiTlpPartitioner{o}.partition(g, config, ctx);
    return std::tuple{part.raw(), ctx.telemetry().counter("imbalance"),
                      ctx.telemetry().counter("steals")};
  };
  const auto [bytes_off, imbalance_off, steals_off] = run(false);
  const auto [bytes_on, imbalance_on, steals_on] = run(true);
  EXPECT_EQ(bytes_off, bytes_on);  // only the schedule may move
  EXPECT_EQ(steals_off, 0.0);
  EXPECT_GT(steals_on, 0.0);
  // Stealing must beat the static schedule's imbalance — unless the static
  // schedule was already essentially flat (within 2% of perfect), where
  // measurement noise dominates.
  EXPECT_LT(imbalance_on, std::max(imbalance_off, 1.02));
}

// ---------------------------------------------------------------------
// Sharded claim protocol (MultiTlpOptions::num_shards; docs/THREADING.md,
// "Sharded claim protocol"). The contract: the message-passing execution
// mode is byte-identical to the shared-memory path for EVERY combination
// of shard count, worker count and steal setting, and the fault-injection
// hook can only repeat/permute (harmless) or lose (loud failure) claim
// requests — never silently change the result.

// The 30-second smoke run in tools/check.sh's fast leg: smallest fixture,
// S in {1, 4}, versus the shared-memory baseline. Referenced by name from
// check.sh — keep the test name stable.
TEST(MultiTlpShard, SmokeInvariance) {
  const Graph g = gen::caveman_graph(4, 5);
  const auto config = config_for(3, 2);
  RunContext base_ctx;
  const EdgePartition base =
      MultiTlpPartitioner{}.partition(g, config, base_ctx);
  for (const std::uint32_t shards : {1u, 4u}) {
    MultiTlpOptions o;
    o.num_shards = shards;
    RunContext ctx;
    const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config, ctx);
    EXPECT_EQ(part.raw(), base.raw()) << shards << " shards";
    EXPECT_EQ(scheduler_invariant_counters(ctx),
              scheduler_invariant_counters(base_ctx))
        << shards << " shards";
    EXPECT_EQ(ctx.telemetry().counter("shards"),
              static_cast<double>(shards));
    EXPECT_GT(ctx.telemetry().counter("claim_rounds"), 0.0);
  }
  EXPECT_EQ(base_ctx.telemetry().counter("shards"), 0.0);
  EXPECT_EQ(base_ctx.telemetry().counter("messages_sent"), 0.0);
}

// The tentpole differential suite: shard counts (1 = everything on one
// rank, 2, 7 = coprime with most structure, 64 > any frontier batch) ×
// worker counts × steal, on a skewed power-law graph and a community
// graph, all against the num_shards = 0 shared-memory baseline.
TEST(MultiTlpShard, BitIdenticalAcrossShardCountsThreadsAndSteal) {
  const std::vector<Graph> graphs = {
      gen::chung_lu_power_law(500, 3000, 2.3, 23),
      gen::sbm(400, 2600, 8, 0.85, 31)};
  for (const Graph& g : graphs) {
    const auto config = config_for(6, 13);
    RunContext base_ctx;
    const EdgePartition base =
        MultiTlpPartitioner{}.partition(g, config, base_ctx);
    for (const std::uint32_t shards : {1u, 2u, 7u, 64u}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        for (const bool steal : {false, true}) {
          MultiTlpOptions o;
          o.num_shards = shards;
          o.num_threads = threads;
          o.steal = steal;
          RunContext ctx;
          const EdgePartition part =
              MultiTlpPartitioner{o}.partition(g, config, ctx);
          EXPECT_EQ(part.raw(), base.raw())
              << g.summary() << ": " << shards << " shards, " << threads
              << " threads, steal " << steal;
          EXPECT_EQ(scheduler_invariant_counters(ctx),
                    scheduler_invariant_counters(base_ctx))
              << g.summary() << ": " << shards << " shards, " << threads
              << " threads, steal " << steal;
          EXPECT_EQ(scheduler_invariant_series(ctx),
                    scheduler_invariant_series(base_ctx))
              << g.summary() << ": " << shards << " shards, " << threads
              << " threads, steal " << steal;
        }
      }
    }
  }
}

TEST(MultiTlpShard, HardwareThreadsShardedMatchesShared) {
  const Graph g = gen::barabasi_albert(300, 4, 19);
  const auto config = config_for(6, 5);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  MultiTlpOptions o;
  o.num_shards = 4;
  o.num_threads = 0;  // hardware_concurrency, capped at p
  const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
  EXPECT_EQ(part.raw(), base.raw());
}

// For a FIXED shard count the transport accounting is part of the
// deterministic protocol, not the schedule: every (threads × steal)
// combination sends the same messages in the same rounds.
TEST(MultiTlpShard, MessageCountsAreScheduleInvariant) {
  const Graph g = gen::erdos_renyi(250, 1100, 29);
  const auto config = config_for(5, 3);
  std::vector<std::pair<double, double>> observed;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const bool steal : {false, true}) {
      MultiTlpOptions o;
      o.num_shards = 4;
      o.num_threads = threads;
      o.steal = steal;
      RunContext ctx;
      (void)MultiTlpPartitioner{o}.partition(g, config, ctx);
      observed.emplace_back(ctx.telemetry().counter("messages_sent"),
                            ctx.telemetry().counter("claim_rounds"));
    }
  }
  ASSERT_FALSE(observed.empty());
  EXPECT_GT(observed.front().first, 0.0);
  EXPECT_GT(observed.front().second, 0.0);
  for (const auto& [messages, rounds] : observed) {
    EXPECT_EQ(messages, observed.front().first);
    EXPECT_EQ(rounds, observed.front().second);
  }
}

TEST(MultiTlpShard, ShardCountExceedingEdgeCountWorks) {
  const Graph g = gen::caveman_graph(3, 4);  // few edges, S = 64 shards
  const auto config = config_for(2, 9);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  MultiTlpOptions o;
  o.num_shards = 64;
  const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
  EXPECT_EQ(part.raw(), base.raw());
}

// Duplicated claim requests are idempotent: min over a multiset ignores
// repeats, so a dup-heavy fabric must still produce the baseline bytes.
TEST(MultiTlpShard, DuplicatedMessagesKeepBytesIdentical) {
  const Graph g = gen::sbm(300, 1800, 6, 0.85, 41);
  const auto config = config_for(6, 17);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  for (const std::size_t threads : {1u, 4u}) {
    MultiTlpOptions o;
    o.num_shards = 7;
    o.num_threads = threads;
    o.comm_faults = dist::FaultPlan{};
    o.comm_faults->seed = 77;
    o.comm_faults->dup_permille = 400;
    const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
    EXPECT_EQ(part.raw(), base.raw()) << threads << " threads";
  }
}

// Reordered delivery is invisible: resolution canonically sorts each
// shard's batch, so any per-lane permutation produces the baseline bytes.
TEST(MultiTlpShard, ReorderedMessagesKeepBytesIdentical) {
  const Graph g = gen::chung_lu_power_law(300, 1700, 2.4, 43);
  const auto config = config_for(5, 19);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  for (const std::size_t threads : {1u, 4u}) {
    MultiTlpOptions o;
    o.num_shards = 7;
    o.num_threads = threads;
    o.comm_faults = dist::FaultPlan{};
    o.comm_faults->seed = 101;
    o.comm_faults->reorder = true;
    const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
    EXPECT_EQ(part.raw(), base.raw()) << threads << " threads";
  }
}

// Dropping EVERY claim request must trip the commit scan's divergence
// check the first time a partition attempts a real (non-self-loop) claim —
// a lost request may never silently strand an edge.
TEST(MultiTlpShard, DroppingAllMessagesFailsLoudly) {
  const Graph g = gen::erdos_renyi(120, 500, 47);
  const auto config = config_for(4, 23);
  MultiTlpOptions o;
  o.num_shards = 4;
  o.comm_faults = dist::FaultPlan{};
  o.comm_faults->drop_permille = 1000;
  EXPECT_THROW((void)MultiTlpPartitioner{o}.partition(g, config),
               std::runtime_error);
}

// At partial drop rates the run either completes with a VALID partition
// (the lost requests merely shifted wins to the lowest surviving
// requester) or throws the divergence error — silent corruption is the
// one outcome the protocol forbids.
TEST(MultiTlpShard, PartialDropsEitherThrowOrStayValid) {
  const Graph g = gen::sbm(200, 1100, 4, 0.85, 53);
  const auto config = config_for(4, 29);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    MultiTlpOptions o;
    o.num_shards = 7;
    o.comm_faults = dist::FaultPlan{};
    o.comm_faults->seed = seed;
    o.comm_faults->drop_permille = 100;
    try {
      const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
      EXPECT_TRUE(validate(g, part, config).ok()) << "fault seed " << seed;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("claim protocol diverged"),
                std::string::npos)
          << "fault seed " << seed << ": " << e.what();
    }
  }
}

TEST(MultiTlp, DisconnectedGraphFullyCovered) {
  EdgeList edges;
  for (VertexId i = 0; i < 30; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(60, std::move(edges));
  const auto config = config_for(3);
  const EdgePartition part = MultiTlpPartitioner{}.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

}  // namespace
}  // namespace tlp
