// Tests for the edge-cut-model (vertex partitioning) metrics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/generators.hpp"
#include "partition/vertex_metrics.hpp"

namespace tlp {
namespace {

TEST(VertexMetrics, PathBisection) {
  const Graph g = gen::path_graph(4);  // 0-1-2-3
  const auto m = vertex_partition_metrics(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(m.cut_edges, 1u);
  EXPECT_DOUBLE_EQ(m.cut_fraction, 1.0 / 3.0);
  // Vertex 1 has a ghost on part 1, vertex 2 on part 0.
  EXPECT_EQ(m.ghost_count, 2u);
  EXPECT_DOUBLE_EQ(m.ghost_factor, 1.5);
  EXPECT_EQ(m.max_part_vertices, 2u);
  EXPECT_DOUBLE_EQ(m.vertex_balance, 1.0);
}

TEST(VertexMetrics, NoCutMeansNoGhosts) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto m = vertex_partition_metrics(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(m.cut_edges, 0u);
  EXPECT_EQ(m.ghost_count, 0u);
  EXPECT_DOUBLE_EQ(m.ghost_factor, 1.0);
}

TEST(VertexMetrics, StarCutEverywhere) {
  const Graph g = gen::star_graph(6);
  // Center on part 0, all leaves on part 1.
  std::vector<PartitionId> parts(7, 1);
  parts[0] = 0;
  const auto m = vertex_partition_metrics(g, parts, 2);
  EXPECT_EQ(m.cut_edges, 6u);
  EXPECT_DOUBLE_EQ(m.cut_fraction, 1.0);
  // Center ghosts once on part 1; each leaf ghosts once on part 0.
  EXPECT_EQ(m.ghost_count, 7u);
  EXPECT_DOUBLE_EQ(m.ghost_factor, 2.0);
}

TEST(VertexMetrics, GhostCountsDistinctPartsOnly) {
  // Vertex 0 adjacent to two vertices on the SAME foreign part: one ghost.
  const Graph g = Graph::from_edges(3, {{0, 1}, {0, 2}});
  const auto m = vertex_partition_metrics(g, {0, 1, 1}, 2);
  EXPECT_EQ(m.cut_edges, 2u);
  EXPECT_EQ(m.ghost_count, 3u);  // 0 ghosts on part 1; 1 and 2 ghost on part 0
}

TEST(VertexMetrics, EdgeBalanceUsesIntraEdges) {
  const Graph g = gen::complete_graph(4);
  // All vertices on part 0 of 2: all 6 edges intra on part 0.
  const auto m = vertex_partition_metrics(g, {0, 0, 0, 0}, 2);
  EXPECT_EQ(m.max_part_edges, 6u);
  EXPECT_DOUBLE_EQ(m.edge_balance, 2.0);
  EXPECT_DOUBLE_EQ(m.vertex_balance, 2.0);
}

TEST(VertexMetrics, RejectsBadInput) {
  const Graph g = gen::path_graph(3);
  EXPECT_THROW((void)vertex_partition_metrics(g, {0, 0}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)vertex_partition_metrics(g, {0, 0, 5}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)vertex_partition_metrics(g, {0, 0, 0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlp
