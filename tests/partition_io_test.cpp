// Tests for partition serialization (text .parts and binary formats).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/partition_io.hpp"

namespace tlp::io {
namespace {

EdgePartition make_partition(const Graph& g, PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return TlpPartitioner{}.partition(g, config);
}

TEST(PartitionText, RoundTrip) {
  const Graph g = gen::erdos_renyi(60, 200, 81);
  const EdgePartition original = make_partition(g, 4);
  std::stringstream buffer;
  write_partition_text(g, original, buffer);
  const EdgePartition reloaded = read_partition_text(g, buffer);
  EXPECT_EQ(reloaded.raw(), original.raw());
  EXPECT_EQ(reloaded.num_partitions(), 4u);
}

TEST(PartitionText, AcceptsReversedEndpointsAndComments) {
  const Graph g = gen::path_graph(3);  // edges (0,1),(1,2)
  std::istringstream in(
      "# a comment\n"
      "1 0 1\n"   // reversed orientation
      "2 1 0\n");
  const EdgePartition part = read_partition_text(g, in);
  EXPECT_EQ(part.partition_of(0), 1u);
  EXPECT_EQ(part.partition_of(1), 0u);
}

TEST(PartitionText, RejectsUnknownEdge) {
  const Graph g = gen::path_graph(3);
  std::istringstream in("0 2 0\n");  // (0,2) is not an edge
  EXPECT_THROW((void)read_partition_text(g, in), std::runtime_error);
}

TEST(PartitionText, RejectsMissingEdges) {
  const Graph g = gen::path_graph(4);  // 3 edges
  std::istringstream in("0 1 0\n");
  EXPECT_THROW((void)read_partition_text(g, in), std::runtime_error);
}

TEST(PartitionText, RejectsMalformedLine) {
  const Graph g = gen::path_graph(3);
  std::istringstream in("0 1\n1 2 0\n");  // first line lacks a partition
  EXPECT_THROW((void)read_partition_text(g, in), std::runtime_error);
}

TEST(PartitionBinary, RoundTripExact) {
  const Graph g = gen::barabasi_albert(80, 3, 83);
  const EdgePartition original = make_partition(g, 6);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_partition_binary(original, buffer);
  const EdgePartition reloaded = read_partition_binary(buffer);
  EXPECT_EQ(reloaded.raw(), original.raw());
  EXPECT_EQ(reloaded.num_partitions(), original.num_partitions());
}

TEST(PartitionBinary, PreservesUnassignedSentinel) {
  EdgePartition sparse(3, EdgeId{4});
  sparse.assign(1, 2);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_partition_binary(sparse, buffer);
  const EdgePartition reloaded = read_partition_binary(buffer);
  EXPECT_EQ(reloaded.partition_of(0), kNoPartition);
  EXPECT_EQ(reloaded.partition_of(1), 2u);
  EXPECT_EQ(reloaded.unassigned_count(), 3u);
}

TEST(PartitionBinary, RejectsBadMagicAndRange) {
  std::stringstream bad(std::ios::in | std::ios::out | std::ios::binary);
  bad << "NOPE----------------";
  EXPECT_THROW((void)read_partition_binary(bad), std::runtime_error);

  // Craft a payload with an out-of-range partition id.
  EdgePartition original(2, EdgeId{1});
  original.assign(0, 1);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_partition_binary(original, buffer);
  std::string bytes = buffer.str();
  bytes[bytes.size() - 4] = 0x7f;  // clobber the stored partition id
  std::stringstream corrupt(std::ios::in | std::ios::out | std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW((void)read_partition_binary(corrupt), std::runtime_error);
}

TEST(PartitionBinary, RejectsTruncation) {
  const Graph g = gen::path_graph(10);
  const EdgePartition original = make_partition(g, 2);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_partition_binary(original, buffer);
  const std::string full = buffer.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << full.substr(0, full.size() - 3);
  EXPECT_THROW((void)read_partition_binary(cut), std::runtime_error);
}

TEST(PartitionFiles, RoundTripViaDisk) {
  const Graph g = gen::cycle_graph(20);
  const EdgePartition original = make_partition(g, 3);
  const auto dir = std::filesystem::temp_directory_path();
  const auto text = dir / "tlp_part_test.parts";
  const auto bin = dir / "tlp_part_test.partsb";
  write_partition_text_file(g, original, text);
  write_partition_binary_file(original, bin);
  EXPECT_EQ(read_partition_text_file(g, text).raw(), original.raw());
  EXPECT_EQ(read_partition_binary_file(bin).raw(), original.raw());
  std::filesystem::remove(text);
  std::filesystem::remove(bin);
}

}  // namespace
}  // namespace tlp::io
