// Tests for the per-machine LocalGraph views.
#include <gtest/gtest.h>

#include <set>

#include "core/tlp.hpp"
#include "engine/local_graph.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"

namespace tlp::engine {
namespace {

EdgePartition tlp_partition(const Graph& g, PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return TlpPartitioner{}.partition(g, config);
}

TEST(LocalGraphTest, EdgesPartitionExactlyAcrossMachines) {
  const Graph g = gen::erdos_renyi(150, 600, 91);
  const EdgePartition part = tlp_partition(g, 4);
  const auto machines = build_local_graphs(g, part);
  ASSERT_EQ(machines.size(), 4u);

  std::set<EdgeId> seen;
  EdgeId total = 0;
  for (const LocalGraph& m : machines) {
    total += m.num_edges();
    for (LocalVertexId v = 0; v < m.num_vertices(); ++v) {
      for (const auto& nb : m.neighbors(v)) {
        seen.insert(nb.global_edge);
        // Every local edge must belong to this machine's partition.
        EXPECT_EQ(part.partition_of(nb.global_edge), m.partition_id());
      }
    }
  }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.num_edges()));
}

TEST(LocalGraphTest, LocalIdsAreBijective) {
  const Graph g = gen::barabasi_albert(120, 3, 93);
  const EdgePartition part = tlp_partition(g, 3);
  for (const LocalGraph& m : build_local_graphs(g, part)) {
    for (LocalVertexId v = 0; v < m.num_vertices(); ++v) {
      const VertexId global = m.vertex(v).global;
      EXPECT_EQ(m.local_id(global), v);
    }
  }
}

TEST(LocalGraphTest, ReplicaCountsMatchMetrics) {
  const Graph g = gen::sbm(300, 2000, 10, 0.85, 95);
  const EdgePartition part = tlp_partition(g, 5);
  const auto machines = build_local_graphs(g, part);
  const auto replicas = replica_counts(g, part);

  // Each vertex must appear on exactly `replica_counts` machines.
  std::vector<PartitionId> appearances(g.num_vertices(), 0);
  for (const LocalGraph& m : machines) {
    for (LocalVertexId v = 0; v < m.num_vertices(); ++v) {
      ++appearances[m.vertex(v).global];
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(appearances[v], replicas[v]) << "vertex " << v;
  }
}

TEST(LocalGraphTest, ExactlyOneMasterPerVertex) {
  const Graph g = gen::erdos_renyi(100, 500, 97);
  const EdgePartition part = tlp_partition(g, 4);
  const auto machines = build_local_graphs(g, part);

  std::vector<int> masters(g.num_vertices(), 0);
  std::size_t mirrors = 0;
  for (const LocalGraph& m : machines) {
    for (LocalVertexId v = 0; v < m.num_vertices(); ++v) {
      const LocalVertex& lv = m.vertex(v);
      if (lv.is_master) {
        EXPECT_EQ(lv.master, m.partition_id());
        ++masters[lv.global];
      } else {
        EXPECT_NE(lv.master, m.partition_id());
        ++mirrors;
      }
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) {
      EXPECT_EQ(masters[v], 1) << "vertex " << v;
    }
  }
  const Placement placement(g, part);
  EXPECT_EQ(mirrors, placement.mirror_count());
}

TEST(LocalGraphTest, LocalDegreesSumToGlobal) {
  const Graph g = gen::caveman_graph(5, 6);
  const EdgePartition part = tlp_partition(g, 5);
  const auto machines = build_local_graphs(g, part);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::size_t local_sum = 0;
    for (const LocalGraph& m : machines) {
      const LocalVertexId lv = m.local_id(v);
      if (lv != static_cast<LocalVertexId>(kInvalidVertex)) {
        local_sum += m.degree(lv);
      }
    }
    EXPECT_EQ(local_sum, g.degree(v));
  }
}

TEST(LocalGraphTest, MissingVertexGivesInvalidLocalId) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EdgePartition part(2, 2);
  part.assign(0, 0);
  part.assign(1, 1);
  const auto machines = build_local_graphs(g, part);
  EXPECT_EQ(machines[0].local_id(2), static_cast<LocalVertexId>(kInvalidVertex));
  EXPECT_EQ(machines[1].local_id(0), static_cast<LocalVertexId>(kInvalidVertex));
}

}  // namespace
}  // namespace tlp::engine
