// Tests for the replication-factor refinement post-pass.
#include <gtest/gtest.h>

#include "core/refine_rf.hpp"
#include "core/tlp.hpp"
#include "baselines/baselines.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return config;
}

TEST(RefineRf, FixesObviousMisplacement) {
  // Path 0-1-2: edges (0,1)->P0, (1,2)->P1. Moving (1,2) to P0 removes
  // vertex 1's second replica without adding any (2 only lives on P1...
  // actually moving creates a replica for 2 on P0 and removes 1 from P1 and
  // 2 from P1: net -1). Refinement must find a strictly better layout.
  const Graph g = gen::path_graph(3);
  EdgePartition part(2, 2);
  part.assign(0, 0);
  part.assign(1, 1);
  const double before = replication_factor(g, part);
  RefineOptions options;
  options.balance_slack = 3.0;  // allow the 2/0 layout
  const RefineResult r = refine_replication(g, part, options);
  EXPECT_GT(r.moves, 0u);
  EXPECT_LT(replication_factor(g, part), before);
}

TEST(RefineRf, NeverIncreasesRf) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::chung_lu_power_law(500, 2500, 2.1, seed);
    const auto config = config_for(6);
    EdgePartition part =
        baselines::RandomPartitioner{}.partition(g, config);
    const double before = replication_factor(g, part);
    (void)refine_replication(g, part);
    EXPECT_LE(replication_factor(g, part), before) << "seed " << seed;
    EXPECT_TRUE(validate(g, part, config).ok());
  }
}

TEST(RefineRf, ImprovesRandomPartitionSubstantially) {
  const Graph g = gen::sbm(600, 4800, 12, 0.9, 7);
  const auto config = config_for(6);
  EdgePartition part = baselines::RandomPartitioner{}.partition(g, config);
  const double before = replication_factor(g, part);
  const RefineResult r = refine_replication(g, part);
  const double after = replication_factor(g, part);
  EXPECT_LT(after, before * 0.9);  // at least 10% better on communities
  EXPECT_GT(r.replicas_removed, 0u);
}

TEST(RefineRf, RespectsBalanceCeiling) {
  const Graph g = gen::caveman_graph(4, 10);
  const auto config = config_for(4);
  EdgePartition part = baselines::RandomPartitioner{}.partition(g, config);
  RefineOptions options;
  options.balance_slack = 1.05;
  (void)refine_replication(g, part, options);
  EXPECT_LE(balance_factor(part), 1.15);  // 1.05 cap + integer rounding
}

TEST(RefineRf, ReplicaAccountingMatchesMetrics) {
  const Graph g = gen::erdos_renyi(300, 1500, 9);
  const auto config = config_for(5);
  EdgePartition part = baselines::DbhPartitioner{}.partition(g, config);
  const auto before = replica_counts(g, part);
  std::size_t replicas_before = 0;
  for (const auto c : before) replicas_before += c;

  const RefineResult r = refine_replication(g, part);

  const auto after = replica_counts(g, part);
  std::size_t replicas_after = 0;
  for (const auto c : after) replicas_after += c;
  EXPECT_EQ(replicas_before - replicas_after, r.replicas_removed);
}

TEST(RefineRf, NoOpOnSinglePartitionOrEmpty) {
  const Graph g = gen::path_graph(5);
  EdgePartition one(1, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) one.assign(e, 0);
  EXPECT_EQ(refine_replication(g, one).moves, 0u);

  EdgePartition empty(3, EdgeId{0});
  const Graph none;
  EXPECT_EQ(refine_replication(none, empty).moves, 0u);
}

TEST(RefineRf, TlpGainsLittle) {
  // TLP partitions are already locally tight: refinement should find far
  // less improvement than it does on random partitions.
  const Graph g = gen::sbm(600, 4800, 12, 0.9, 7);
  const auto config = config_for(6);
  EdgePartition tlp_part = TlpPartitioner{}.partition(g, config);
  const double tlp_before = replication_factor(g, tlp_part);
  (void)refine_replication(g, tlp_part);
  const double tlp_delta = tlp_before - replication_factor(g, tlp_part);

  EdgePartition rnd = baselines::RandomPartitioner{}.partition(g, config);
  const double rnd_before = replication_factor(g, rnd);
  (void)refine_replication(g, rnd);
  const double rnd_delta = rnd_before - replication_factor(g, rnd);

  EXPECT_LT(tlp_delta, rnd_delta);
}

TEST(RefinedPartitioner, WrapsAndNames) {
  const Graph g = gen::erdos_renyi(200, 800, 11);
  const auto config = config_for(4);
  RefinedPartitioner refined(
      std::make_unique<baselines::RandomPartitioner>());
  EXPECT_EQ(refined.name(), "random+refine");
  const EdgePartition part = refined.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
  EXPECT_LE(replication_factor(g, part),
            replication_factor(
                g, baselines::RandomPartitioner{}.partition(g, config)));
}

}  // namespace
}  // namespace tlp
