// Unit tests for the RunContext building blocks: scratch arena reuse,
// telemetry sink, and cooperative cancellation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/run_context.hpp"

namespace tlp {
namespace {

TEST(ScratchArena, FirstAcquireIsAMiss) {
  ScratchArena arena;
  const auto lease = arena.acquire<int>(100, 7);
  EXPECT_EQ(arena.hits(), 0u);
  EXPECT_EQ(arena.misses(), 1u);
  EXPECT_EQ(lease->size(), 100u);
  for (const int v : *lease) EXPECT_EQ(v, 7);
}

TEST(ScratchArena, ReacquireAfterReleaseIsAHit) {
  ScratchArena arena;
  {
    const auto lease = arena.acquire<int>(100);
  }  // released back to the pool
  const auto lease = arena.acquire<int>(50);  // fits in recycled capacity
  EXPECT_EQ(arena.hits(), 1u);
  EXPECT_EQ(arena.misses(), 1u);
  EXPECT_EQ(lease->size(), 50u);
}

TEST(ScratchArena, GrowingReuseCountsAsMiss) {
  ScratchArena arena;
  {
    const auto lease = arena.acquire<int>(10);
  }
  const auto lease = arena.acquire<int>(10000);  // pooled but must grow
  EXPECT_EQ(arena.hits(), 0u);
  EXPECT_EQ(arena.misses(), 2u);
}

TEST(ScratchArena, ContentsAreResetOnEveryAcquire) {
  ScratchArena arena;
  {
    auto lease = arena.acquire<int>(10, 0);
    for (int& v : *lease) v = 99;
  }
  const auto lease = arena.acquire<int>(10, 0);
  for (const int v : *lease) EXPECT_EQ(v, 0);  // determinism: no stale data
}

TEST(ScratchArena, TypesArePooledSeparately) {
  ScratchArena arena;
  {
    const auto a = arena.acquire<int>(64);
  }
  const auto b = arena.acquire<double>(8);  // different type: no reuse
  EXPECT_EQ(arena.hits(), 0u);
  EXPECT_EQ(arena.misses(), 2u);
}

TEST(ScratchArena, PeakBytesTracksHighWater) {
  ScratchArena arena;
  { const auto a = arena.acquire<std::uint64_t>(1000); }
  const std::size_t after_first = arena.peak_bytes();
  EXPECT_GE(after_first, 1000 * sizeof(std::uint64_t));
  // Reuse at a smaller size must not raise the peak.
  { const auto b = arena.acquire<std::uint64_t>(10); }
  EXPECT_EQ(arena.peak_bytes(), after_first);
  // Two concurrent leases force a second allocation: peak grows.
  const auto c = arena.acquire<std::uint64_t>(1000);
  const auto d = arena.acquire<std::uint64_t>(1000);
  EXPECT_GE(arena.peak_bytes(), 2000 * sizeof(std::uint64_t));
}

TEST(ScratchArena, MovedFromLeaseDoesNotDoubleRelease) {
  ScratchArena arena;
  auto a = arena.acquire<int>(16);
  auto b = std::move(a);
  EXPECT_EQ(b->size(), 16u);
  b = arena.acquire<int>(8);  // move-assign releases the old buffer once
  EXPECT_EQ(b->size(), 8u);
}

TEST(Telemetry, CountersAccumulate) {
  Telemetry t;
  EXPECT_EQ(t.counter("x"), 0.0);
  t.add("x");
  t.add("x", 2.5);
  EXPECT_EQ(t.counter("x"), 3.5);
  t.set("x", 1.0);
  EXPECT_EQ(t.counter("x"), 1.0);
}

TEST(Telemetry, SetMaxKeepsHighWater) {
  Telemetry t;
  t.set_max("peak", 5.0);
  t.set_max("peak", 3.0);
  EXPECT_EQ(t.counter("peak"), 5.0);
  t.set_max("peak", 9.0);
  EXPECT_EQ(t.counter("peak"), 9.0);
}

TEST(Telemetry, SeriesAppend) {
  Telemetry t;
  EXPECT_EQ(t.series("s"), nullptr);
  t.append("s", 1.0);
  t.append("s", 2.0);
  const auto* s = t.series("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(*s, (std::vector<double>{1.0, 2.0}));
}

TEST(Telemetry, ScopedTimerAddsElapsed) {
  Telemetry t;
  {
    auto timer = t.time("phase_s");
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(t.timer_seconds("phase_s"), 0.0);
  const double after_first = t.timer_seconds("phase_s");
  { auto timer = t.time("phase_s"); }
  EXPECT_GE(t.timer_seconds("phase_s"), after_first);  // accumulates
}

TEST(Telemetry, ScopedTimerStopFlushesOnce) {
  Telemetry t;
  auto timer = t.time("x_s");
  timer.stop();
  const double first = t.timer_seconds("x_s");
  timer.stop();  // idempotent
  EXPECT_EQ(t.timer_seconds("x_s"), first);
}

TEST(Telemetry, ToJsonShapesIntegersAndNaN) {
  Telemetry t;
  t.add("count", 3.0);
  t.add("ratio", 0.5);
  t.add_seconds("x_s", 1.5);
  t.append("series_a", 2.0);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"count\":3."), std::string::npos);  // no decimal
  EXPECT_NE(json.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"series_a\":[2]"), std::string::npos);
}

TEST(Telemetry, ClearResetsEverything) {
  Telemetry t;
  t.add("c", 1.0);
  t.add_seconds("t_s", 1.0);
  t.append("s", 1.0);
  t.clear();
  EXPECT_EQ(t.counter("c"), 0.0);
  EXPECT_EQ(t.timer_seconds("t_s"), 0.0);
  EXPECT_EQ(t.series("s"), nullptr);
}

TEST(Telemetry, MergeFromAddsCountersAndTimersAndConcatenatesSeries) {
  Telemetry parent;
  parent.add("joins", 2.0);
  parent.add_seconds("phase_s", 1.0);
  parent.append("rounds", 1.0);
  Telemetry worker;
  worker.add("joins", 3.0);
  worker.add("conflicts", 1.0);
  worker.add_seconds("phase_s", 0.5);
  worker.append("rounds", 2.0);
  parent.merge_from(worker);
  EXPECT_EQ(parent.counter("joins"), 5.0);
  EXPECT_EQ(parent.counter("conflicts"), 1.0);
  EXPECT_EQ(parent.timer_seconds("phase_s"), 1.5);
  EXPECT_EQ(*parent.series("rounds"), (std::vector<double>{1.0, 2.0}));
  // The source is untouched.
  EXPECT_EQ(worker.counter("joins"), 3.0);
}

TEST(Telemetry, PhaseHookFiresOnEntryAndExit) {
  Telemetry t;
  std::vector<std::pair<std::string, double>> events;
  t.set_phase_hook([&events](std::string_view phase, double seconds) {
    events.emplace_back(std::string(phase), seconds);
  });
  { auto timer = t.time("grow_s"); }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, "grow_s");
  EXPECT_LT(events[0].second, 0.0);  // entry marker
  EXPECT_EQ(events[1].first, "grow_s");
  EXPECT_GE(events[1].second, 0.0);  // elapsed on exit
  t.set_phase_hook(nullptr);
  { auto timer = t.time("grow_s"); }
  EXPECT_EQ(events.size(), 2u);  // disabled hook stays silent
}

TEST(RunContext, ChildContextsAreCachedPerIndex) {
  RunContext ctx;
  EXPECT_EQ(ctx.num_children(), 0u);
  RunContext& a = ctx.child(0);
  RunContext& b = ctx.child(1);
  EXPECT_EQ(ctx.num_children(), 2u);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&ctx.child(0), &a);  // same object on re-request
  EXPECT_EQ(ctx.num_children(), 2u);
  // Child arenas are private: leases recycle within the child only.
  { const auto lease = a.arena().acquire<int>(32); }
  const auto reuse = a.arena().acquire<int>(16);
  EXPECT_EQ(a.arena().hits(), 1u);
  EXPECT_EQ(ctx.arena().hits(), 0u);
  EXPECT_EQ(b.arena().hits(), 0u);
}

TEST(CancelToken, StopFlagTrips) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request_stop();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, PastDeadlineTrips) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::seconds(1));
  EXPECT_TRUE(token.cancelled());
}

TEST(RunContext, CheckCancelledThrowsAfterStop) {
  RunContext ctx;
  EXPECT_NO_THROW(ctx.check_cancelled());
  ctx.cancel().request_stop();
  EXPECT_THROW(ctx.check_cancelled(), RunCancelled);
}

TEST(RunContext, CancelledRunAbortsPartitioning) {
  const Graph g = gen::erdos_renyi(200, 800, 21);
  const TlpPartitioner tlp;
  PartitionConfig config;
  config.num_partitions = 4;
  RunContext ctx;
  ctx.cancel().request_stop();
  EXPECT_THROW((void)tlp.partition(g, config, ctx), RunCancelled);
  // The context stays usable after a reset.
  ctx.cancel().reset();
  EXPECT_NO_THROW((void)tlp.partition(g, config, ctx));
}

TEST(RunContext, ExpiredDeadlineAbortsPartitioning) {
  const Graph g = gen::erdos_renyi(200, 800, 23);
  const TlpPartitioner tlp;
  PartitionConfig config;
  config.num_partitions = 4;
  RunContext ctx;
  ctx.cancel().set_timeout(std::chrono::nanoseconds(0));
  EXPECT_THROW((void)tlp.partition(g, config, ctx), RunCancelled);
}

TEST(RunContext, ArenaHitsFromSecondRunOnward) {
  const Graph g = gen::erdos_renyi(300, 1200, 25);
  const TlpPartitioner tlp;
  PartitionConfig config;
  config.num_partitions = 4;
  RunContext ctx;
  (void)tlp.partition(g, config, ctx);
  // Frontier bucket heaps recycle pooled buffers even within run 1, so hits
  // may already be nonzero here; what matters is that run 2 allocates
  // nothing new.
  const std::uint64_t hits_after_first = ctx.arena().hits();
  const std::uint64_t misses_after_first = ctx.arena().misses();
  EXPECT_GT(misses_after_first, 0u);
  (void)tlp.partition(g, config, ctx);
  // Run 2 reuses every buffer run 1 allocated: all hits, no new misses.
  EXPECT_GT(ctx.arena().hits(), hits_after_first);
  EXPECT_EQ(ctx.arena().misses(), misses_after_first);
}

TEST(RunContext, TracksRunsAndAlgorithm) {
  const Graph g = gen::path_graph(10);
  PartitionConfig config;
  config.num_partitions = 2;
  RunContext ctx;
  EXPECT_EQ(ctx.runs(), 0u);
  EXPECT_EQ(ctx.last_algorithm(), "");
  (void)TlpPartitioner{}.partition(g, config, ctx);
  (void)make_tlp_r(0.5).partition(g, config, ctx);
  EXPECT_EQ(ctx.runs(), 2u);
  EXPECT_EQ(ctx.last_algorithm(), "tlp_r0.5");
  EXPECT_EQ(ctx.telemetry().counter("runs"), 2.0);
}

}  // namespace
}  // namespace tlp
