// Tests for TLP telemetry: working-set tracking and modularity sampling
// through the RunContext sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return config;
}

TEST(Telemetry, PeakWorkingSetIsTracked) {
  const Graph g = gen::erdos_renyi(400, 1600, 131);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  const Telemetry& t = ctx.telemetry();
  EXPECT_GT(t.counter("peak_frontier"), 0.0);
  EXPECT_GT(t.counter("peak_members"), 0.0);
  // The working set is bounded by the graph itself.
  EXPECT_LE(t.counter("peak_frontier"), static_cast<double>(g.num_vertices()));
  EXPECT_LE(t.counter("peak_members"), static_cast<double>(g.num_vertices()));
  // Peak members is exactly the largest round's join count.
  const auto* joins = t.series("round_joins");
  ASSERT_NE(joins, nullptr);
  EXPECT_EQ(t.counter("peak_members"),
            *std::max_element(joins->begin(), joins->end()));
}

TEST(Telemetry, ModularitySamplingOffByDefault) {
  const Graph g = gen::erdos_renyi(200, 800, 133);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  for (PartitionId k = 0; k < 4; ++k) {
    const std::string key = "round" + std::to_string(k) + "_modularity";
    EXPECT_EQ(ctx.telemetry().series(key), nullptr);
  }
}

TEST(Telemetry, ModularitySamplesFollowStride) {
  const Graph g = gen::erdos_renyi(300, 1500, 137);
  TlpOptions options;
  options.modularity_sample_stride = 4;
  const TlpPartitioner tlp(options);
  RunContext ctx;
  (void)tlp.partition(g, config_for(3), ctx);
  const Telemetry& t = ctx.telemetry();
  const auto* joins = t.series("round_joins");
  ASSERT_NE(joins, nullptr);
  ASSERT_FALSE(joins->empty());
  const auto* samples = t.series("round0_modularity");
  ASSERT_NE(samples, nullptr);
  EXPECT_GT(samples->size(), 0u);
  // Roughly one sample per 4 joins.
  EXPECT_NEAR(static_cast<double>(samples->size()), joins->front() / 4.0, 2.0);
  // Samples are valid ratios (or +inf when the boundary is empty).
  for (const double m : *samples) {
    EXPECT_TRUE(m >= 0.0 || std::isinf(m));
  }
}

TEST(Telemetry, AccumulatesAcrossRunsSharingContext) {
  // A context is reusable: counters and series from a second run pile on
  // top of the first instead of resetting.
  const Graph g = gen::path_graph(40);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(2), ctx);
  const double joins_after_one = ctx.telemetry().counter("stage1_joins") +
                                 ctx.telemetry().counter("stage2_joins");
  const std::size_t rounds_after_one = ctx.telemetry().series("round_joins")->size();
  (void)tlp.partition(g, config_for(2), ctx);
  EXPECT_EQ(ctx.telemetry().counter("stage1_joins") +
                ctx.telemetry().counter("stage2_joins"),
            2.0 * joins_after_one);
  EXPECT_EQ(ctx.telemetry().series("round_joins")->size(),
            2 * rounds_after_one);
  EXPECT_EQ(ctx.runs(), 2u);
  EXPECT_EQ(ctx.telemetry().counter("runs"), 2.0);
  EXPECT_EQ(ctx.last_algorithm(), "tlp");
}

TEST(Telemetry, StageDegreeAveragesConsistent) {
  const Graph g = gen::dcsbm(2000, 16000, 2.1, 14, 0.65, 139);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(8), ctx);
  const Telemetry& t = ctx.telemetry();
  if (t.counter("stage1_joins") > 0.0) {
    const double avg = t.counter("stage1_degree_sum") / t.counter("stage1_joins");
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, static_cast<double>(g.num_vertices()));
  }
  // Sum of per-round stage joins equals the aggregate counters.
  const auto* s1 = t.series("round_stage1_joins");
  const auto* s2 = t.series("round_stage2_joins");
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  double s1_sum = 0.0;
  double s2_sum = 0.0;
  for (const double v : *s1) s1_sum += v;
  for (const double v : *s2) s2_sum += v;
  EXPECT_EQ(s1_sum, t.counter("stage1_joins"));
  EXPECT_EQ(s2_sum, t.counter("stage2_joins"));
}

TEST(Telemetry, TotalTimerIsRecorded) {
  const Graph g = gen::erdos_renyi(200, 800, 141);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  EXPECT_GT(ctx.telemetry().timer_seconds("total_s"), 0.0);
}

}  // namespace
}  // namespace tlp
