// Tests for TLP telemetry: working-set tracking and modularity sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return config;
}

TEST(Telemetry, PeakWorkingSetIsTracked) {
  const Graph g = gen::erdos_renyi(400, 1600, 131);
  const TlpPartitioner tlp;
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  EXPECT_GT(stats.peak_frontier, 0u);
  EXPECT_GT(stats.peak_members, 0u);
  // The working set is bounded by the graph itself.
  EXPECT_LE(stats.peak_frontier, g.num_vertices());
  EXPECT_LE(stats.peak_members, g.num_vertices());
  // Peak members can't be below the largest round's joins.
  std::size_t max_joins = 0;
  for (const RoundStats& r : stats.rounds) {
    max_joins = std::max(max_joins, r.joins);
  }
  EXPECT_EQ(stats.peak_members, max_joins);
}

TEST(Telemetry, ModularitySamplingOffByDefault) {
  const Graph g = gen::erdos_renyi(200, 800, 133);
  const TlpPartitioner tlp;
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  for (const RoundStats& r : stats.rounds) {
    EXPECT_TRUE(r.modularity_samples.empty());
  }
}

TEST(Telemetry, ModularitySamplesFollowStride) {
  const Graph g = gen::erdos_renyi(300, 1500, 137);
  const TlpPartitioner tlp;
  TlpStats stats;
  stats.modularity_sample_stride = 4;
  (void)tlp.partition_with_stats(g, config_for(3), stats);
  ASSERT_FALSE(stats.rounds.empty());
  const RoundStats& round = stats.rounds.front();
  EXPECT_GT(round.modularity_samples.size(), 0u);
  // Roughly one sample per 4 joins.
  EXPECT_NEAR(static_cast<double>(round.modularity_samples.size()),
              static_cast<double>(round.joins) / 4.0, 2.0);
  // Samples are valid ratios (or +inf when the boundary is empty).
  for (const double m : round.modularity_samples) {
    EXPECT_TRUE(m >= 0.0 || std::isinf(m));
  }
}

TEST(Telemetry, StrideSurvivesStatsReset) {
  // partition_with_stats resets stats but must keep the caller's stride.
  const Graph g = gen::path_graph(40);
  const TlpPartitioner tlp;
  TlpStats stats;
  stats.modularity_sample_stride = 2;
  stats.stage1_joins = 999;  // garbage that must be cleared
  (void)tlp.partition_with_stats(g, config_for(2), stats);
  EXPECT_EQ(stats.modularity_sample_stride, 2u);
  EXPECT_LT(stats.stage1_joins, 999u);
  bool any_samples = false;
  for (const RoundStats& r : stats.rounds) {
    any_samples = any_samples || !r.modularity_samples.empty();
  }
  EXPECT_TRUE(any_samples);
}

TEST(Telemetry, StageDegreeAveragesConsistent) {
  const Graph g = gen::dcsbm(2000, 16000, 2.1, 14, 0.65, 139);
  const TlpPartitioner tlp;
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(8), stats);
  if (stats.stage1_joins > 0) {
    EXPECT_GE(stats.stage1_avg_degree(), 1.0);
    EXPECT_LE(stats.stage1_avg_degree(),
              static_cast<double>(g.num_vertices()));
  }
  // Sum of per-round stage joins equals the aggregate.
  std::size_t s1 = 0;
  std::size_t s2 = 0;
  for (const RoundStats& r : stats.rounds) {
    s1 += r.stage1_joins;
    s2 += r.stage2_joins;
  }
  EXPECT_EQ(s1, stats.stage1_joins);
  EXPECT_EQ(s2, stats.stage2_joins);
}

}  // namespace
}  // namespace tlp
