// Tests for the incremental edge assigner.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "stream/incremental.hpp"

namespace tlp::stream {
namespace {

/// Initial graph + TLP partitioning shared by tests.
struct Seeded {
  Graph g;
  EdgePartition part;
  Seeded(VertexId n, EdgeId m, PartitionId p) {
    g = gen::erdos_renyi(n, m, 71);
    PartitionConfig config;
    config.num_partitions = p;
    part = TlpPartitioner{}.partition(g, config);
  }
};

TEST(Incremental, SeedStateMatchesInitialPartition) {
  const Seeded s(100, 400, 4);
  const IncrementalAssigner assigner(s.g, s.part);
  EXPECT_EQ(assigner.total_edges(), s.g.num_edges());
  EXPECT_NEAR(assigner.current_rf(), replication_factor(s.g, s.part), 1e-12);
  EdgeId total = 0;
  for (const EdgeId load : assigner.loads()) total += load;
  EXPECT_EQ(total, s.g.num_edges());
}

TEST(Incremental, RejectsIncompleteInitialPartition) {
  const Graph g = gen::path_graph(4);
  const EdgePartition hole(2, g.num_edges());  // all unassigned
  EXPECT_THROW(IncrementalAssigner(g, hole), std::invalid_argument);
  EXPECT_THROW(IncrementalAssigner(g, EdgePartition(2, EdgeId{1})),
               std::invalid_argument);
}

TEST(Incremental, LocalityRuleReusesSharedPartition) {
  // Both endpoints of the new edge live only on partition of edge 0.
  const Graph g = gen::path_graph(3);  // edges (0,1),(1,2)
  EdgePartition part(3, 2);
  part.assign(0, 1);
  part.assign(1, 1);
  IncrementalAssigner assigner(g, part, /*slack=*/2.0);
  EXPECT_EQ(assigner.assign(Edge{0, 2}), 1u);  // both live on 1
  EXPECT_NEAR(assigner.current_rf(), 1.0, 1e-12);  // no new replicas
}

TEST(Incremental, NewVerticesGrowTables) {
  const Seeded s(50, 150, 3);
  IncrementalAssigner assigner(s.g, s.part);
  // Attach a chain of brand-new vertices.
  const PartitionId first = assigner.assign(Edge{10, 1000});
  const PartitionId second = assigner.assign(Edge{1000, 1001});
  EXPECT_LT(first, 3u);
  // Locality: 1000 already lives on `first`, so its next edge should stay
  // there (capacity permitting).
  EXPECT_EQ(second, first);
  EXPECT_EQ(assigner.total_edges(), s.g.num_edges() + 2);
}

TEST(Incremental, SelfLoopsGoSomewhereValid) {
  const Seeded s(50, 150, 3);
  IncrementalAssigner assigner(s.g, s.part);
  EXPECT_LT(assigner.assign(Edge{7, 7}), 3u);
}

TEST(Incremental, CapacityKeepsBalanceBounded) {
  const Seeded s(200, 800, 4);
  IncrementalAssigner assigner(s.g, s.part, /*slack=*/1.1);
  // Stream many edges all touching vertex 0 (worst locality pull).
  for (VertexId v = 200; v < 800; ++v) {
    (void)assigner.assign(Edge{0, v});
  }
  const auto& loads = assigner.loads();
  const EdgeId max_load = *std::max_element(loads.begin(), loads.end());
  const double avg = static_cast<double>(assigner.total_edges()) /
                     static_cast<double>(loads.size());
  EXPECT_LT(static_cast<double>(max_load), 1.25 * avg);
}

TEST(Incremental, RfStaysFarBelowWorstCase) {
  // Grow a community graph by 30% and check the live RF stays in the same
  // ballpark as re-partitioning from scratch would give.
  const Graph base = gen::sbm(500, 4000, 10, 0.9, 73);
  PartitionConfig config;
  config.num_partitions = 5;
  const EdgePartition part = TlpPartitioner{}.partition(base, config);
  IncrementalAssigner assigner(base, part);

  std::mt19937_64 rng(99);
  std::uniform_int_distribution<VertexId> pick(0, 499);
  for (int i = 0; i < 1200; ++i) {
    // Mostly intra-community arrivals (same block mod 10).
    const VertexId u = pick(rng);
    const VertexId v =
        static_cast<VertexId>((u + 10 * (1 + rng() % 48)) % 500);
    (void)assigner.assign(Edge{u, v});
  }
  EXPECT_LT(assigner.current_rf(), 3.0);
  EXPECT_GE(assigner.current_rf(), 1.0);
}

}  // namespace
}  // namespace tlp::stream
