// Tests for all random-graph generators and deterministic fixtures.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/algorithms.hpp"
#include "graph/stats.hpp"

namespace tlp::gen {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  const Graph g = erdos_renyi(100, 250, /*seed=*/1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(ErdosRenyi, DeterministicForSeed) {
  const Graph a = erdos_renyi(50, 100, 42);
  const Graph b = erdos_renyi(50, 100, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  const Graph a = erdos_renyi(50, 100, 1);
  const Graph b = erdos_renyi(50, 100, 2);
  bool any_diff = false;
  for (EdgeId e = 0; e < a.num_edges() && !any_diff; ++e) {
    any_diff = !(a.edge(e) == b.edge(e));
  }
  EXPECT_TRUE(any_diff);
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(erdos_renyi(4, 7, 1), std::invalid_argument);  // max C(4,2)=6
}

TEST(ErdosRenyi, CompleteGraphIsReachable) {
  const Graph g = erdos_renyi(5, 10, 3);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(BarabasiAlbert, SizeAndAttachment) {
  const Graph g = barabasi_albert(500, 3, /*seed=*/2);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Seed clique C(4,2)=6 edges + 496 * 3.
  EXPECT_EQ(g.num_edges(), 6u + 496u * 3u);
  EXPECT_EQ(largest_component_size(g), 500u);  // BA is connected
}

TEST(BarabasiAlbert, HubsEmerge) {
  const Graph g = barabasi_albert(2000, 2, /*seed=*/8);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_degree, 20u);  // preferential attachment creates hubs
  EXPECT_EQ(s.min_degree, 2u);
}

TEST(BarabasiAlbert, RejectsZeroEdgesPerVertex) {
  EXPECT_THROW(barabasi_albert(10, 0, 1), std::invalid_argument);
}

TEST(Rmat, SizeAndSkew) {
  const Graph g = rmat(1 << 12, 20000, RmatParams{}, /*seed=*/4);
  EXPECT_EQ(g.num_edges(), 20000u);
  const GraphStats s = compute_stats(g);
  // Skewed quadrant probabilities concentrate edges on low-id vertices.
  EXPECT_GT(s.max_degree, 10 * static_cast<std::size_t>(s.avg_degree));
}

TEST(Rmat, RejectsBadProbabilities) {
  EXPECT_THROW(rmat(16, 10, RmatParams{0.9, 0.2, 0.2}, 1),
               std::invalid_argument);
  EXPECT_THROW(rmat(0, 0, RmatParams{}, 1), std::invalid_argument);
  EXPECT_THROW(rmat(4, 100, RmatParams{}, 1), std::invalid_argument);
}

TEST(Rmat, Deterministic) {
  const Graph a = rmat(256, 500, RmatParams{}, 7);
  const Graph b = rmat(256, 500, RmatParams{}, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(ChungLu, SizeAndTail) {
  const Graph g = chung_lu_power_law(5000, 25000, 2.1, /*seed=*/6);
  EXPECT_EQ(g.num_edges(), 25000u);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_degree, 5 * static_cast<std::size_t>(s.avg_degree));
}

TEST(ChungLu, RejectsBadParameters) {
  EXPECT_THROW(chung_lu_power_law(1, 0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu_power_law(10, 5, 0.9, 1), std::invalid_argument);
  EXPECT_THROW(chung_lu_power_law(4, 100, 2.0, 1), std::invalid_argument);
}

TEST(Sbm, CommunityStructureDominates) {
  const Graph g = sbm(1000, 10000, 10, 0.9, /*seed=*/3);
  EXPECT_EQ(g.num_edges(), 10000u);
  // Count intra-block edges (block = v % 10): should be close to 90%.
  EdgeId intra = 0;
  for (const Edge& e : g.edges()) {
    if (e.u % 10 == e.v % 10) ++intra;
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(g.num_edges()),
            0.8);
}

TEST(Sbm, RejectsBadParameters) {
  EXPECT_THROW(sbm(10, 5, 0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(sbm(10, 5, 11, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(sbm(10, 5, 2, 1.5, 1), std::invalid_argument);
}

TEST(WattsStrogatz, RingWithoutRewiring) {
  const Graph g = watts_strogatz(20, 4, 0.0, /*seed=*/1);
  EXPECT_EQ(g.num_edges(), 40u);  // n*k/2
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatz, RewiringKeepsEdgeBudget) {
  const Graph g = watts_strogatz(100, 6, 0.3, /*seed=*/5);
  EXPECT_LE(g.num_edges(), 300u);
  EXPECT_GT(g.num_edges(), 280u);  // a few rewires may collide and drop
}

TEST(WattsStrogatz, RejectsBadParameters) {
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, 1), std::invalid_argument);
}

TEST(Fixtures, PathCycleStarCompleteGrid) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(star_graph(6).num_edges(), 6u);
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Lfr, SizesAndCoverage) {
  LfrParams params;
  params.n = 1200;
  params.avg_degree = 12.0;
  params.mu = 0.2;
  const LfrGraph result = lfr(params, 201);
  EXPECT_EQ(result.graph.num_vertices(), 1200u);
  EXPECT_GT(result.num_communities, 3u);
  ASSERT_EQ(result.community.size(), 1200u);
  for (const VertexId c : result.community) {
    EXPECT_LT(c, result.num_communities);
  }
  // Average degree lands near the target (stub pairing drops a few).
  const double avg = result.graph.average_degree();
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 14.0);
}

TEST(Lfr, MixingParameterControlsInterEdges) {
  LfrParams params;
  params.n = 1500;
  params.avg_degree = 14.0;
  const auto inter_fraction = [&](double mu) {
    params.mu = mu;
    const LfrGraph result = lfr(params, 203);
    EdgeId inter = 0;
    for (const Edge& e : result.graph.edges()) {
      if (result.community[e.u] != result.community[e.v]) ++inter;
    }
    return static_cast<double>(inter) /
           static_cast<double>(result.graph.num_edges());
  };
  const double low = inter_fraction(0.1);
  const double high = inter_fraction(0.5);
  // The simplified LFR clamps hub internal degrees to the community size,
  // which pushes the effective mixing slightly above nominal mu — the test
  // checks control, not exactness.
  EXPECT_LT(low, 0.3);
  EXPECT_GT(high, low + 0.15);
}

TEST(Lfr, DeterministicAndValidates) {
  LfrParams params;
  params.n = 400;
  const LfrGraph a = lfr(params, 7);
  const LfrGraph b = lfr(params, 7);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    EXPECT_EQ(a.graph.edge(e), b.graph.edge(e));
  }
  EXPECT_EQ(a.community, b.community);
}

TEST(Lfr, RejectsBadParameters) {
  LfrParams params;
  params.n = 2;
  EXPECT_THROW((void)lfr(params, 1), std::invalid_argument);
  params.n = 100;
  params.mu = 1.5;
  EXPECT_THROW((void)lfr(params, 1), std::invalid_argument);
  params.mu = 0.2;
  params.min_community = 1;
  EXPECT_THROW((void)lfr(params, 1), std::invalid_argument);
}

TEST(Fixtures, CavemanStructure) {
  const Graph g = caveman_graph(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  // 4 cliques of C(5,2)=10 edges + 3 bridges.
  EXPECT_EQ(g.num_edges(), 43u);
  EXPECT_EQ(largest_component_size(g), 20u);
}

}  // namespace
}  // namespace tlp::gen
