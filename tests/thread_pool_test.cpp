// Unit tests for the fork/join worker pool behind parallel multi-partition
// growth.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tlp {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto a = pool.submit([] { return 41 + 1; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, SingleThreadPoolRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 16; ++i) {
    done.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : done) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  pool.run_indexed(kN, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunIndexedIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  pool.run_indexed(32, [&](std::size_t) { ++done; });
  // After return, every invocation has completed.
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, RunIndexedRethrowsSmallestFailingIndex) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 5; ++attempt) {
    try {
      pool.run_indexed(16, [](std::size_t i) {
        if (i % 3 == 1) throw i;  // fails at 1, 4, 7, ...
      });
      FAIL() << "expected run_indexed to throw";
    } catch (const std::size_t& i) {
      EXPECT_EQ(i, 1u);  // deterministic despite arbitrary scheduling
    }
  }
}

TEST(ThreadPool, RunStridedCoversEveryTaskOnItsStaticWorker) {
  ThreadPool pool(3);
  constexpr std::size_t kTasks = 20;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::atomic<std::size_t>> worker_of(kTasks);
  pool.run_strided(kTasks, [&](std::size_t w, std::size_t t) {
    ++hits[t];
    worker_of[t] = w;
  });
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1);
    EXPECT_EQ(worker_of[t].load(), t % 3);  // static t % min(size, tasks)
  }
}

TEST(ThreadPool, RunStridedClampsStrideToTaskCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<std::size_t>> worker_of(3);
  pool.run_strided(3, [&](std::size_t w, std::size_t t) { worker_of[t] = w; });
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(worker_of[t].load(), t);  // stride = min(8, 3) = 3
  }
}

TEST(ThreadPool, RunStridedZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.run_strided(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, RunStridedRethrowsSmallestFailingWorker) {
  ThreadPool pool(4);
  try {
    pool.run_strided(12, [](std::size_t, std::size_t t) {
      if (t % 2 == 1) throw t;  // workers 1 and 3 fail
    });
    FAIL() << "expected run_strided to throw";
  } catch (const std::size_t& t) {
    EXPECT_EQ(t, 1u);  // worker 1's first failing task
  }
}

TEST(ThreadPool, StopBreaksQueuedPromisesAndRejectsSubmit) {
  ThreadPool pool(1);
  // Park the single worker so everything behind it stays queued; wait for
  // it to actually start so stop() cannot abandon it too.
  std::promise<void> started;
  std::promise<void> release;
  auto gate = release.get_future().share();
  auto running = pool.submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  auto queued = pool.submit([] { return 1; });
  started.get_future().wait();
  pool.stop();
  release.set_value();
  running.get();  // already-running task finishes normally
  EXPECT_THROW(queued.get(), std::future_error);
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrencyWithFloorOfOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> n{0};
  pool.run_indexed(8, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 8);
}

}  // namespace
}  // namespace tlp
