// Unit tests for the CSR Graph and GraphBuilder.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace tlp {
namespace {

TEST(Edge, CanonicalOrdersEndpoints) {
  EXPECT_EQ((Edge{5, 2}.canonical()), (Edge{2, 5}));
  EXPECT_EQ((Edge{2, 5}.canonical()), (Edge{2, 5}));
}

TEST(Edge, OtherReturnsOppositeEndpoint) {
  constexpr Edge e{3, 7};
  EXPECT_EQ(e.other(3), 7u);
  EXPECT_EQ(e.other(7), 3u);
}

TEST(Edge, SelfLoopDetection) {
  EXPECT_TRUE((Edge{4, 4}.is_self_loop()));
  EXPECT_FALSE((Edge{4, 5}.is_self_loop()));
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, NeighborsAreSortedWithEdgeIds) {
  // Insert edges in scrambled order; adjacency must come out sorted.
  const Graph g = Graph::from_edges(5, {{4, 0}, {0, 2}, {0, 1}, {3, 0}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0].vertex, 1u);
  EXPECT_EQ(nbrs[1].vertex, 2u);
  EXPECT_EQ(nbrs[2].vertex, 3u);
  EXPECT_EQ(nbrs[3].vertex, 4u);
  for (const Neighbor& nb : nbrs) {
    const Edge& e = g.edge(nb.edge);
    EXPECT_TRUE(e.u == 0 || e.v == 0);
    EXPECT_EQ(e.other(0), nb.vertex);
  }
}

TEST(Graph, EdgesAreCanonicalized) {
  const Graph g = Graph::from_edges(4, {{3, 1}, {2, 0}});
  for (const Edge& e : g.edges()) {
    EXPECT_LE(e.u, e.v);
  }
}

TEST(Graph, HasEdgeNegative) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, CommonNeighborCount) {
  //   0 - 1
  //   | X |     (0-1, 0-2, 0-3, 1-2, 1-3)
  //   2   3
  const Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2u);  // {2, 3}
  EXPECT_EQ(g.common_neighbor_count(2, 3), 2u);  // {0, 1}
  EXPECT_EQ(g.common_neighbor_count(0, 2), 1u);  // {1}
}

TEST(Graph, CommonNeighborCountGallopPath) {
  // Star with a big hub exercises the galloping branch (skew well over 16x).
  EdgeList edges;
  const VertexId n = 200;
  for (VertexId v = 2; v < n; ++v) edges.push_back(Edge{0, v});
  edges.push_back(Edge{1, 2});
  edges.push_back(Edge{1, 3});
  edges.push_back(Edge{0, 1});
  const Graph g = Graph::from_edges(n, std::move(edges));
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2u);  // {2, 3}
  EXPECT_EQ(g.common_neighbor_count(1, 0), 2u);  // symmetric
}

namespace {

/// Reference oracle: quadratic double loop over both adjacency lists.
std::size_t brute_common(const Graph& g, VertexId u, VertexId v) {
  std::size_t count = 0;
  for (const Neighbor& a : g.neighbors(u)) {
    for (const Neighbor& b : g.neighbors(v)) {
      if (a.vertex == b.vertex) ++count;
    }
  }
  return count;
}

/// Graph where deg(0) = small_deg, deg(1) = big_deg, and vertices 0 and 1
/// share exactly `overlap` neighbors.
Graph skewed_pair(std::size_t small_deg, std::size_t big_deg,
                  std::size_t overlap) {
  EdgeList edges;
  VertexId next = 2;
  std::vector<VertexId> shared;
  for (std::size_t i = 0; i < overlap; ++i) shared.push_back(next++);
  for (const VertexId s : shared) {
    edges.push_back(Edge{0, s});
    edges.push_back(Edge{1, s});
  }
  for (std::size_t i = overlap; i < small_deg; ++i) {
    edges.push_back(Edge{0, next++});
  }
  for (std::size_t i = overlap; i < big_deg; ++i) {
    edges.push_back(Edge{1, next++});
  }
  return Graph::from_edges(next, std::move(edges));
}

}  // namespace

TEST(Graph, CommonNeighborCountAtGallopThresholdBoundary) {
  // deg(0) = 4 against deg(1) = 60 / 64 / 68: skews of 15x (merge), 16x
  // (first gallop), and 17x (gallop). The count must be identical on both
  // sides of Graph::kGallopSkew.
  for (const std::size_t ratio : {15u, 16u, 17u}) {
    const std::size_t small_deg = 4;
    const std::size_t big_deg = small_deg * ratio;
    for (const std::size_t overlap : {0u, 1u, 3u, 4u}) {
      const Graph g = skewed_pair(small_deg, big_deg, overlap);
      EXPECT_EQ(g.common_neighbor_count(0, 1), overlap)
          << "ratio " << ratio << ", overlap " << overlap;
      EXPECT_EQ(g.common_neighbor_count(1, 0), overlap) << "symmetric";
      EXPECT_EQ(g.common_neighbor_count(0, 1), brute_common(g, 0, 1));
    }
  }
}

TEST(Graph, CommonNeighborCountEmptyAndDisjoint) {
  // Vertex 3 is isolated: intersecting with an empty list is always 0.
  const Graph g = Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 2}, {2, 4}});
  EXPECT_EQ(g.common_neighbor_count(3, 0), 0u);
  EXPECT_EQ(g.common_neighbor_count(0, 3), 0u);
  EXPECT_EQ(g.common_neighbor_count(3, 3), 0u);

  // Fully disjoint neighborhoods at >= 16x skew: the gallop must walk off
  // the long list without finding anything.
  const Graph h = skewed_pair(4, 64, 0);
  EXPECT_EQ(h.common_neighbor_count(0, 1), 0u);
  EXPECT_EQ(h.common_neighbor_count(1, 0), 0u);

  // Short list entirely ABOVE the long list's range: first probe gallops
  // past the end immediately.
  EdgeList edges;
  for (VertexId v = 2; v < 66; ++v) edges.push_back(Edge{0, v});
  edges.push_back(Edge{1, 100});
  edges.push_back(Edge{1, 101});
  const Graph above = Graph::from_edges(102, std::move(edges));
  EXPECT_EQ(above.common_neighbor_count(0, 1), 0u);
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, FromEdgesRejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, FromEdgesRejectsDuplicates) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {0, 1}}), std::invalid_argument);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  EXPECT_NE(g.summary().find("n=3"), std::string::npos);
  EXPECT_NE(g.summary().find("m=1"), std::string::npos);
}

TEST(GraphBuilder, DropsSelfLoopsAndDuplicates) {
  GraphBuilder builder(/*relabel=*/false);
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);  // duplicate (reverse orientation)
  builder.add_edge(2, 2);  // self-loop
  builder.add_edge(1, 2);
  BuildReport report;
  const Graph g = builder.build(&report);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(report.input_edges, 4u);
  EXPECT_EQ(report.self_loops, 1u);
  EXPECT_EQ(report.duplicate_edges, 1u);
  EXPECT_EQ(report.kept_edges, 2u);
}

TEST(GraphBuilder, RelabelsSparseIds) {
  GraphBuilder builder(/*relabel=*/true);
  builder.add_edge(1000, 2000);
  builder.add_edge(2000, 3000);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphBuilder, NoRelabelUsesMaxId) {
  GraphBuilder builder(/*relabel=*/false);
  builder.add_edge(0, 9);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder builder;
  builder.add_edge(0, 1);
  (void)builder.build();
  EXPECT_EQ(builder.edges_offered(), 0u);
  builder.add_edge(5, 6);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 2u);  // relabeled afresh
}

TEST(GraphBuilder, EmptyBuild) {
  GraphBuilder builder;
  const Graph g = builder.build();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
}

}  // namespace
}  // namespace tlp
