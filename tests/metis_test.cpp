// Tests for the multilevel (METIS-style) partitioner and its phases.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/generators.hpp"
#include "metis/coarsen.hpp"
#include "metis/initial.hpp"
#include "metis/multilevel.hpp"
#include "metis/refine.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp::metis {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(WGraphTest, LiftsUnweightedGraph) {
  const Graph g = gen::cycle_graph(6);
  const WGraph w = WGraph::from_graph(g);
  EXPECT_EQ(w.num_vertices(), 6u);
  EXPECT_EQ(w.total_vertex_weight(), 6);
  EXPECT_EQ(w.num_adjacency_entries(), 12u);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(w.vertex_weight(v), 1);
    EXPECT_EQ(w.neighbors(v).size(), 2u);
  }
}

TEST(WGraphTest, WeightedCut) {
  const Graph g = gen::path_graph(4);
  const WGraph w = WGraph::from_graph(g);
  EXPECT_EQ(weighted_cut(w, {0, 0, 1, 1}), 1);
  EXPECT_EQ(weighted_cut(w, {0, 1, 0, 1}), 3);
  EXPECT_EQ(weighted_cut(w, {0, 0, 0, 0}), 0);
}

TEST(Coarsen, PreservesTotalVertexWeight) {
  const Graph g = gen::erdos_renyi(200, 800, 5);
  const WGraph w = WGraph::from_graph(g);
  const CoarseLevel level = coarsen_hem(w, 1);
  EXPECT_EQ(level.graph.total_vertex_weight(), w.total_vertex_weight());
  EXPECT_LT(level.graph.num_vertices(), w.num_vertices());
  // Matching halves at best.
  EXPECT_GE(level.graph.num_vertices(), w.num_vertices() / 2);
}

TEST(Coarsen, MapCoversAllFineVertices) {
  const Graph g = gen::barabasi_albert(150, 3, 2);
  const WGraph w = WGraph::from_graph(g);
  const CoarseLevel level = coarsen_hem(w, 3);
  ASSERT_EQ(level.fine_to_coarse.size(), w.num_vertices());
  for (const VertexId c : level.fine_to_coarse) {
    EXPECT_LT(c, level.graph.num_vertices());
  }
  // Every coarse vertex is the image of 1 or 2 fine vertices.
  std::vector<int> hits(level.graph.num_vertices(), 0);
  for (const VertexId c : level.fine_to_coarse) ++hits[c];
  for (const int h : hits) {
    EXPECT_GE(h, 1);
    EXPECT_LE(h, 2);
  }
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  // Any partition of the coarse graph, projected to the fine graph, must
  // have the same weighted cut (contraction preserves crossing weights).
  const Graph g = gen::erdos_renyi(100, 400, 9);
  const WGraph w = WGraph::from_graph(g);
  const CoarseLevel level = coarsen_hem(w, 4);
  std::vector<PartitionId> coarse_parts(level.graph.num_vertices());
  for (VertexId v = 0; v < level.graph.num_vertices(); ++v) {
    coarse_parts[v] = v % 2;
  }
  std::vector<PartitionId> fine_parts(w.num_vertices());
  for (VertexId v = 0; v < w.num_vertices(); ++v) {
    fine_parts[v] = coarse_parts[level.fine_to_coarse[v]];
  }
  EXPECT_EQ(weighted_cut(level.graph, coarse_parts),
            weighted_cut(w, fine_parts));
}

TEST(Bisect, SplitsNearTarget) {
  const Graph g = gen::erdos_renyi(200, 1000, 11);
  const WGraph w = WGraph::from_graph(g);
  const auto parts = bisect(w, w.total_vertex_weight() / 2, 1);
  Weight side0 = 0;
  for (VertexId v = 0; v < w.num_vertices(); ++v) {
    if (parts[v] == 0) side0 += w.vertex_weight(v);
  }
  EXPECT_NEAR(static_cast<double>(side0),
              static_cast<double>(w.total_vertex_weight()) / 2.0,
              0.1 * static_cast<double>(w.total_vertex_weight()));
}

TEST(Bisect, FindsPlantedBisection) {
  // Two 30-cliques joined by one bridge: the optimal bisection cut is 1.
  const Graph g = gen::caveman_graph(2, 30);
  const WGraph w = WGraph::from_graph(g);
  const auto parts = bisect(w, w.total_vertex_weight() / 2, 5);
  EXPECT_LE(weighted_cut(w, parts), 3);
}

TEST(FmRefine, NeverWorsensCut) {
  const Graph g = gen::erdos_renyi(150, 600, 13);
  const WGraph w = WGraph::from_graph(g);
  std::vector<PartitionId> parts(w.num_vertices());
  for (VertexId v = 0; v < w.num_vertices(); ++v) parts[v] = v % 2;
  const Weight before = weighted_cut(w, parts);
  const Weight after =
      fm_refine_bisection(w, parts, w.total_vertex_weight() / 2);
  EXPECT_LE(after, before);
  EXPECT_EQ(after, weighted_cut(w, parts));  // returned cut is consistent
}

TEST(KwayRefine, NeverWorsensCutAndKeepsBalance) {
  const Graph g = gen::erdos_renyi(300, 1500, 17);
  const WGraph w = WGraph::from_graph(g);
  const PartitionId k = 5;
  std::vector<PartitionId> parts(w.num_vertices());
  for (VertexId v = 0; v < w.num_vertices(); ++v) parts[v] = v % k;
  const Weight before = weighted_cut(w, parts);
  const Weight after = kway_refine(w, parts, k, 1.05, 8, 3);
  EXPECT_LE(after, before);

  std::vector<Weight> loads(k, 0);
  for (VertexId v = 0; v < w.num_vertices(); ++v) {
    loads[parts[v]] += w.vertex_weight(v);
  }
  const Weight max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(static_cast<double>(max_load),
            1.06 * static_cast<double>(w.total_vertex_weight()) / k + 1.0);
}

TEST(Multilevel, VertexPartitionIsCompleteAndBalanced) {
  const Graph g = gen::barabasi_albert(2000, 4, 19);
  const MetisPartitioner metis;
  const auto parts = metis.vertex_partition(g, config_for(10));
  ASSERT_EQ(parts.size(), g.num_vertices());
  std::vector<std::size_t> sizes(10, 0);
  for (const PartitionId p : parts) {
    ASSERT_LT(p, 10u);
    ++sizes[p];
  }
  const std::size_t max_size = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_LT(static_cast<double>(max_size), 1.35 * 2000.0 / 10.0);
}

TEST(Multilevel, RecoversPlantedCommunities) {
  const Graph g = gen::caveman_graph(4, 20);
  const MetisPartitioner metis;
  const auto parts = metis.vertex_partition(g, config_for(4));
  // Optimal cut is 3 (the bridges).
  EXPECT_LE(edge_cut(g, parts), 6u);
}

TEST(Multilevel, BeatsNaiveSplitOnErdosRenyi) {
  const Graph g = gen::erdos_renyi(1000, 5000, 23);
  const MetisPartitioner metis;
  const auto config = config_for(8);
  const auto parts = metis.vertex_partition(g, config);
  std::vector<PartitionId> naive(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) naive[v] = v % 8;
  EXPECT_LT(edge_cut(g, parts), edge_cut(g, naive));
}

TEST(Multilevel, EdgePartitionIsValid) {
  const MetisPartitioner metis;
  for (const Graph& g :
       {gen::path_graph(30), gen::star_graph(50), gen::complete_graph(15),
        gen::erdos_renyi(400, 2000, 29), gen::caveman_graph(5, 10)}) {
    const auto config = config_for(5);
    const EdgePartition part = metis.partition(g, config);
    EXPECT_TRUE(validate(g, part, config).ok()) << g.summary();
  }
}

TEST(Multilevel, Deterministic) {
  const Graph g = gen::barabasi_albert(500, 3, 31);
  const MetisPartitioner metis;
  const auto a = metis.vertex_partition(g, config_for(6, 9));
  const auto b = metis.vertex_partition(g, config_for(6, 9));
  EXPECT_EQ(a, b);
}

TEST(Multilevel, HandlesTinyGraphsAndEdgeCases) {
  const MetisPartitioner metis;
  // Fewer vertices than parts.
  const Graph tiny = gen::path_graph(3);
  const auto parts = metis.vertex_partition(tiny, config_for(8));
  ASSERT_EQ(parts.size(), 3u);
  for (const PartitionId p : parts) EXPECT_LT(p, 8u);
  // k = 1.
  const auto one = metis.vertex_partition(tiny, config_for(1));
  EXPECT_TRUE(std::all_of(one.begin(), one.end(),
                          [](PartitionId p) { return p == 0; }));
  // Empty graph.
  EXPECT_TRUE(metis.vertex_partition(Graph{}, config_for(4)).empty());
  // Zero partitions.
  EXPECT_THROW((void)metis.partition(tiny, config_for(0)),
               std::invalid_argument);
}

TEST(Multilevel, LowRfOnCommunitiesVersusRandomHash) {
  const Graph g = gen::sbm(1000, 8000, 10, 0.9, 37);
  const MetisPartitioner metis;
  const auto config = config_for(10);
  const EdgePartition part = metis.partition(g, config);
  EdgePartition hash(10, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    hash.assign(e, static_cast<PartitionId>((e * 2654435761u) % 10));
  }
  EXPECT_LT(replication_factor(g, part), replication_factor(g, hash));
}

}  // namespace
}  // namespace tlp::metis
