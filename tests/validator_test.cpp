// Tests for edge-partition validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/generators.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return config;
}

TEST(Validator, AcceptsCompleteBalancedPartition) {
  const Graph g = gen::cycle_graph(8);
  EdgePartition part(2, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.assign(e, static_cast<PartitionId>(e % 2));
  }
  const ValidationResult r = validate(g, part, config_for(2));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.strictly_ok());
  EXPECT_EQ(r.unassigned, 0u);
  EXPECT_EQ(r.max_load, 4u);
  EXPECT_TRUE(r.errors.empty());
}

TEST(Validator, FlagsUnassignedEdges) {
  const Graph g = gen::path_graph(4);
  EdgePartition part(2, g.num_edges());
  part.assign(0, 0);
  const ValidationResult r = validate(g, part, config_for(2));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.unassigned, 2u);
  EXPECT_FALSE(r.errors.empty());
}

TEST(Validator, FlagsOutOfRangeAssignment) {
  const Graph g = gen::path_graph(3);
  EdgePartition part(2, g.num_edges());
  part.assign(0, 0);
  part.assign(1, 7);  // out of range
  const ValidationResult r = validate(g, part, config_for(2));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.in_range);
}

TEST(Validator, FlagsCapacityViolationWithoutFailingOk) {
  const Graph g = gen::cycle_graph(8);
  EdgePartition part(2, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) part.assign(e, 0);
  const ValidationResult r = validate(g, part, config_for(2));
  EXPECT_TRUE(r.ok());             // complete + in range
  EXPECT_FALSE(r.strictly_ok());   // but capacity busted
  EXPECT_FALSE(r.within_capacity);
  EXPECT_EQ(r.max_load, 8u);
  EXPECT_EQ(r.capacity, 4u);
}

TEST(Validator, SizeMismatchIsFatal) {
  const Graph g = gen::path_graph(4);
  const EdgePartition part(2, EdgeId{1});  // wrong edge count
  const ValidationResult r = validate(g, part, config_for(2));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.errors.empty());
}

TEST(Validator, ThrowHelper) {
  const Graph g = gen::path_graph(4);
  EdgePartition bad(2, g.num_edges());
  EXPECT_THROW(validate_or_throw(g, bad, config_for(2)), std::logic_error);

  EdgePartition good(2, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) good.assign(e, 0);
  EXPECT_NO_THROW(validate_or_throw(g, good, config_for(2)));
}

TEST(Validator, EmptyGraphIsValid) {
  const Graph g;
  const EdgePartition part(3, EdgeId{0});
  EXPECT_TRUE(validate(g, part, config_for(3)).ok());
}

}  // namespace
}  // namespace tlp
