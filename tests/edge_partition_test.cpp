// Tests for the EdgePartition value type.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "partition/edge_partition.hpp"
#include "partition/partitioner.hpp"

namespace tlp {
namespace {

TEST(EdgePartition, StartsUnassigned) {
  const EdgePartition p(3, 10);
  EXPECT_EQ(p.num_partitions(), 3u);
  EXPECT_EQ(p.num_edges(), 10u);
  EXPECT_EQ(p.unassigned_count(), 10u);
  for (EdgeId e = 0; e < 10; ++e) {
    EXPECT_FALSE(p.is_assigned(e));
    EXPECT_EQ(p.partition_of(e), kNoPartition);
  }
}

TEST(EdgePartition, AssignAndCount) {
  EdgePartition p(3, 5);
  p.assign(0, 1);
  p.assign(1, 1);
  p.assign(2, 0);
  const auto counts = p.edge_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(p.unassigned_count(), 2u);
}

TEST(EdgePartition, Reassignment) {
  EdgePartition p(2, 1);
  p.assign(0, 0);
  p.assign(0, 1);
  EXPECT_EQ(p.partition_of(0), 1u);
  EXPECT_EQ(p.edge_counts()[0], 0u);
  EXPECT_EQ(p.edge_counts()[1], 1u);
}

TEST(EdgePartition, WrapsExistingVector) {
  const EdgePartition p(2, std::vector<PartitionId>{0, 1, 0});
  EXPECT_EQ(p.num_edges(), 3u);
  EXPECT_EQ(p.edge_counts()[0], 2u);
  EXPECT_EQ(p.raw().size(), 3u);
}

TEST(EdgePartition, ZeroEdges) {
  const EdgePartition p(4, EdgeId{0});
  EXPECT_EQ(p.num_edges(), 0u);
  EXPECT_EQ(p.unassigned_count(), 0u);
  EXPECT_EQ(p.edge_counts().size(), 4u);
}

TEST(PartitionConfig, CapacityCeilDivision) {
  PartitionConfig config;
  config.num_partitions = 3;
  EXPECT_EQ(config.capacity(9), 3u);
  EXPECT_EQ(config.capacity(10), 4u);  // ceil(10/3)
  EXPECT_EQ(config.capacity(1), 1u);
  EXPECT_EQ(config.capacity(0), 1u);  // floor of 1 keeps progress possible
}

TEST(PartitionConfig, CapacitySlack) {
  PartitionConfig config;
  config.num_partitions = 2;
  config.balance_slack = 1.5;
  EXPECT_EQ(config.capacity(10), 7u);  // ceil(10/2)*1.5 = 7.5 -> truncated
}

TEST(PartitionConfig, ValidateRejectsBadSlack) {
  // Sub-1 slack is a contradiction (capacity below a perfect split); it
  // used to clamp silently inside capacity() — now validate() rejects it.
  PartitionConfig config;
  config.num_partitions = 2;
  config.balance_slack = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.balance_slack = std::numeric_limits<double>::infinity();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.balance_slack = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.balance_slack = 1.0;
  EXPECT_NO_THROW(config.validate());
  config.num_partitions = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace tlp
