// Differential suite for the external-memory build pipeline: every budget
// must yield a TLPC file byte-identical to the in-memory builder's, and
// identical BuildReport accounting, across duplicate/self-loop/relabel
// corners. Byte-identity of the file implies identical graphs (same edge
// ids, same adjacency order), which is the conformance bar the partition
// differential suites build on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace tlp {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() /
         ("tlp_builder_spill_" + std::to_string(::getpid()) + "_" + name);
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// A messy input: duplicates in both orientations, self-loops, and (for
/// the relabel case) sparse scattered ids.
EdgeList messy_edges(std::size_t count, VertexId id_span, bool sparse,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  EdgeList edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    VertexId u = static_cast<VertexId>(rng() % id_span);
    VertexId v = static_cast<VertexId>(rng() % id_span);
    if (rng() % 7 == 0) v = u;          // self-loop
    if (sparse) {
      u = u * 977 + 13;                 // scattered id space
      v = v * 977 + 13;
    }
    edges.push_back(Edge{u, v});
    if (rng() % 3 == 0) edges.push_back(Edge{v, u});  // reverse duplicate
  }
  return edges;
}

void feed(GraphBuilder& b, const EdgeList& edges) {
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
}

struct SpillCase {
  const char* name;
  std::size_t budget;
};

class BuilderSpill : public ::testing::TestWithParam<SpillCase> {};

TEST_P(BuilderSpill, ByteIdenticalToInMemoryBuild) {
  for (const bool relabel : {true, false}) {
    const EdgeList edges =
        messy_edges(/*count=*/5000, /*id_span=*/700, /*sparse=*/relabel, 42);

    GraphBuilder reference(relabel);
    feed(reference, edges);
    BuildReport ref_report;
    const Graph ref = reference.build(&ref_report);
    const auto ref_path = temp_path("ref.tlpc");
    io::write_csr_file(ref, ref_path);

    GraphBuilder spill(relabel);
    spill.set_memory_budget(GetParam().budget);
    feed(spill, edges);
    BuildReport spill_report;
    const auto spill_path = temp_path("spill.tlpc");
    spill.build_to_file(spill_path, &spill_report);

    EXPECT_EQ(file_bytes(ref_path), file_bytes(spill_path))
        << GetParam().name << " relabel=" << relabel;
    EXPECT_EQ(spill_report.input_edges, ref_report.input_edges);
    EXPECT_EQ(spill_report.self_loops, ref_report.self_loops);
    EXPECT_EQ(spill_report.duplicate_edges, ref_report.duplicate_edges);
    EXPECT_EQ(spill_report.kept_edges, ref_report.kept_edges);
    if (GetParam().budget != 0) {
      EXPECT_GT(spill_report.spill_runs, 0u) << GetParam().name;
    }
    EXPECT_GT(spill_report.build_peak_bytes, 0u);

    std::filesystem::remove(ref_path);
    std::filesystem::remove(spill_path);
  }
}

TEST_P(BuilderSpill, BuildReturnsIdenticalGraph) {
  const EdgeList edges = messy_edges(3000, 500, /*sparse=*/false, 7);
  GraphBuilder reference(/*relabel=*/true);
  feed(reference, edges);
  const Graph ref = reference.build();

  GraphBuilder spill(/*relabel=*/true);
  spill.set_memory_budget(GetParam().budget);
  feed(spill, edges);
  const Graph got = spill.build();

  ASSERT_EQ(got.num_vertices(), ref.num_vertices());
  ASSERT_EQ(got.num_edges(), ref.num_edges());
  for (EdgeId e = 0; e < ref.num_edges(); ++e) {
    ASSERT_EQ(got.edge(e), ref.edge(e)) << "edge " << e;
  }
  for (VertexId v = 0; v < ref.num_vertices(); ++v) {
    const auto a = ref.neighbors(v);
    const auto b = got.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].vertex, b[i].vertex);
      ASSERT_EQ(a[i].edge, b[i].edge);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, BuilderSpill,
    ::testing::Values(
        SpillCase{"tiny", 1},            // floor: kMinChunkEdges per run
        SpillCase{"small", 8 << 10},     // many runs
        SpillCase{"boundary", 5000 * sizeof(Edge)},  // ~one chunk boundary
        SpillCase{"unbounded_stream", 0}),           // resident streaming path
    [](const auto& info) { return std::string(info.param.name); });

TEST(BuilderSpillCorners, EmptyBuild) {
  GraphBuilder b;
  b.set_memory_budget(1024);
  const auto path = temp_path("empty.tlpc");
  BuildReport report;
  b.build_to_file(path, &report);
  EXPECT_EQ(report.kept_edges, 0u);
  const Graph g = io::load_csr_file(path);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  std::filesystem::remove(path);
}

TEST(BuilderSpillCorners, SelfLoopOnlyVerticesSurvive) {
  // A self-loop must still intern/extend the vertex space (the Matrix
  // Market reader depends on this), in both regimes.
  for (const std::size_t budget : {std::size_t{0}, std::size_t{512}}) {
    GraphBuilder b(/*relabel=*/false);
    b.set_memory_budget(budget);
    b.add_edge(0, 1);
    b.add_edge(9, 9);
    BuildReport report;
    const Graph g = b.build(&report);
    EXPECT_EQ(g.num_vertices(), 10u) << budget;
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(report.self_loops, 1u);
  }
}

TEST(BuilderSpillCorners, ReusableAfterSpillBuild) {
  GraphBuilder b;
  b.set_memory_budget(512);
  b.add_edge(0, 1);
  (void)b.build();
  EXPECT_EQ(b.edges_offered(), 0u);
  b.add_edge(5, 6);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_vertices(), 2u);  // relabeled afresh
}

TEST(BuilderSpillCorners, BudgetChangeAfterAddEdgeThrows) {
  GraphBuilder b;
  b.add_edge(0, 1);
  EXPECT_THROW(b.set_memory_budget(1024), std::runtime_error);
}

TEST(BuilderSpillCorners, ConvertEdgeListStreamsThroughBudget) {
  const auto text = temp_path("convert.txt");
  {
    std::ofstream out(text);
    out << "# comment\n";
    std::mt19937_64 rng(11);
    for (int i = 0; i < 4000; ++i) {
      out << rng() % 300 << ' ' << rng() % 300 << '\n';
    }
  }
  const auto ref_path = temp_path("convert_ref.tlpc");
  const auto budget_path = temp_path("convert_budget.tlpc");
  io::write_csr_file(io::read_edge_list_file(text), ref_path);

  GraphBuilder probe;  // convert_edge_list_to_csr honours the env budget;
  // here we exercise the API-level equivalent through a builder.
  probe.set_memory_budget(4 << 10);
  {
    std::ifstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto space = line.find(' ');
      probe.add_edge(
          static_cast<VertexId>(std::stoul(line.substr(0, space))),
          static_cast<VertexId>(std::stoul(line.substr(space + 1))));
    }
  }
  probe.build_to_file(budget_path);
  EXPECT_EQ(file_bytes(ref_path), file_bytes(budget_path));

  // And the io-level streaming conversion (budget off in this process)
  // must agree too.
  const auto conv_path = temp_path("convert_api.tlpc");
  const BuildReport report = io::convert_edge_list_to_csr(text, conv_path);
  EXPECT_EQ(file_bytes(ref_path), file_bytes(conv_path));
  EXPECT_EQ(report.kept_edges, io::load_csr_file(conv_path).num_edges());

  for (const auto& p : {text, ref_path, budget_path, conv_path}) {
    std::filesystem::remove(p);
  }
}

}  // namespace
}  // namespace tlp
