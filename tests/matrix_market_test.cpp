// Tests for the Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/io.hpp"

namespace tlp::io {
namespace {

TEST(MatrixMarket, ParsesPatternSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "4 4 3\n"
      "2 1\n"
      "3 2\n"
      "4 3\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(MatrixMarket, GeneralWithValuesCollapses) {
  // General real matrix stores both triangles; values are ignored.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "1 1 9.0\n"
      "3 1 2.5\n");
  BuildReport report;
  const Graph g = read_matrix_market(in, &report);
  EXPECT_EQ(g.num_edges(), 2u);  // (0,1) deduped, self-loop dropped
  EXPECT_GE(report.self_loops, 1u);
}

TEST(MatrixMarket, IsolatedTrailingVerticesPreserved) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "10 10 1\n"
      "2 1\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(MatrixMarket, RejectsBadHeaderAndShape) {
  std::istringstream no_header("1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(no_header), std::runtime_error);

  std::istringstream not_square(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 0\n");
  EXPECT_THROW((void)read_matrix_market(not_square), std::runtime_error);

  std::istringstream bad_format(
      "%%MatrixMarket matrix array real general\n"
      "3 3 0\n");
  EXPECT_THROW((void)read_matrix_market(bad_format), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeAndTruncation) {
  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 1\n"
      "4 1\n");
  EXPECT_THROW((void)read_matrix_market(out_of_range), std::runtime_error);

  std::istringstream truncated(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n");
  EXPECT_THROW((void)read_matrix_market(truncated), std::runtime_error);
}

TEST(MatrixMarket, RoundTrip) {
  const Graph original = gen::erdos_renyi(40, 100, 99);
  std::stringstream buffer;
  write_matrix_market(original, buffer);
  const Graph reloaded = read_matrix_market(buffer);
  ASSERT_EQ(reloaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(reloaded.num_edges(), original.num_edges());
  for (const Edge& e : original.edges()) {
    EXPECT_TRUE(reloaded.has_edge(e.u, e.v));
  }
}

}  // namespace
}  // namespace tlp::io
