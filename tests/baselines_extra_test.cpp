// Deeper behavioral tests for the extension baselines: FENNEL, KL, 2PS.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/vertex_metrics.hpp"

namespace tlp::baselines {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(Fennel, VertexPartitionRespectsCeiling) {
  const Graph g = gen::erdos_renyi(400, 1600, 141);
  const FennelPartitioner fennel;
  const auto parts = fennel.vertex_partition(g, config_for(5));
  std::vector<std::size_t> sizes(5, 0);
  for (const PartitionId p : parts) ++sizes[p];
  const std::size_t cap = static_cast<std::size_t>(1.1 * 400.0 / 5.0) + 1;
  for (const std::size_t size : sizes) {
    EXPECT_LE(size, cap);
  }
}

TEST(Fennel, CutBeatsHashedVertexSplit) {
  const Graph g = gen::sbm(600, 4800, 12, 0.9, 143);
  const FennelPartitioner fennel;
  const auto config = config_for(6);
  const auto parts = fennel.vertex_partition(g, config);
  // Hash split (NOT v % 6, which would accidentally align with the planted
  // v % 12 blocks and be near-optimal).
  std::vector<PartitionId> hashed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    hashed[v] = static_cast<PartitionId>((v * 2654435761u) % 6);
  }
  EXPECT_LT(edge_cut(g, parts), edge_cut(g, hashed));
}

TEST(Fennel, DeterministicAndDistinctFromLdg) {
  const Graph g = gen::barabasi_albert(500, 3, 147);
  const auto config = config_for(4);
  const auto a = FennelPartitioner{}.vertex_partition(g, config);
  const auto b = FennelPartitioner{}.vertex_partition(g, config);
  EXPECT_EQ(a, b);
  const auto ldg = LdgPartitioner{}.vertex_partition(g, config);
  EXPECT_NE(a, ldg);  // different objectives, different partitions
}

TEST(Kl, RecoversPlantedBisection) {
  // Two 24-cliques with one bridge: KL from a random split must find the
  // (nearly) perfect cut.
  const Graph g = gen::caveman_graph(2, 24);
  const KlPartitioner kl;
  const auto parts = kl.vertex_partition(g, config_for(2));
  EXPECT_LE(edge_cut(g, parts), 4u);
  const auto m = vertex_partition_metrics(g, parts, 2);
  EXPECT_LE(m.vertex_balance, 1.1);
}

TEST(Kl, KwayLabelsComplete) {
  const Graph g = gen::erdos_renyi(300, 1200, 149);
  const KlPartitioner kl;
  const auto parts = kl.vertex_partition(g, config_for(6));
  std::vector<std::size_t> sizes(6, 0);
  for (const PartitionId p : parts) {
    ASSERT_LT(p, 6u);
    ++sizes[p];
  }
  // Recursive bisection with proportional targets: all parts populated.
  for (const std::size_t size : sizes) EXPECT_GT(size, 0u);
}

TEST(Kl, BetterCutThanRandomSplit) {
  const Graph g = gen::watts_strogatz(400, 8, 0.1, 151);
  const KlPartitioner kl;
  const auto config = config_for(4);
  const auto parts = kl.vertex_partition(g, config);
  std::vector<PartitionId> naive(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    naive[v] = static_cast<PartitionId>((v * 2654435761u) % 4);
  }
  EXPECT_LT(edge_cut(g, parts), edge_cut(g, naive));
}

TEST(TwoPhaseStreaming, BeatsPlainStreamingOnCommunities) {
  const Graph g = gen::sbm(800, 6400, 16, 0.9, 153);
  const auto config = config_for(8);
  const double rf_2ps = replication_factor(
      g, TwoPhaseStreamingPartitioner{}.partition(g, config));
  const double rf_random = replication_factor(
      g, RandomPartitioner{}.partition(g, config));
  const double rf_greedy = replication_factor(
      g, GreedyPartitioner{}.partition(g, config));
  EXPECT_LT(rf_2ps, rf_random * 0.7);  // clustering pays
  EXPECT_LT(rf_2ps, rf_greedy);        // two passes beat one
}

TEST(TwoPhaseStreaming, LoadStaysBounded) {
  const Graph g = gen::chung_lu_power_law(2000, 14000, 2.1, 157);
  const auto config = config_for(7);
  const EdgePartition part =
      TwoPhaseStreamingPartitioner{}.partition(g, config);
  EXPECT_LT(balance_factor(part), 1.35);
}

TEST(TwoPhaseStreaming, HandlesEmptyAndTinyGraphs) {
  const auto config = config_for(3);
  const EdgePartition empty =
      TwoPhaseStreamingPartitioner{}.partition(Graph{}, config);
  EXPECT_EQ(empty.num_edges(), 0u);
  const Graph tiny = gen::path_graph(3);
  const EdgePartition part =
      TwoPhaseStreamingPartitioner{}.partition(tiny, config);
  EXPECT_EQ(part.unassigned_count(), 0u);
}

}  // namespace
}  // namespace tlp::baselines
