// Transport conformance suite: every Fabric<T> implementation (in-process
// mailboxes, socketpair streams, localhost TCP) must satisfy the same
// contract — FIFO per sender lane with an ascending-sender collect sweep,
// two-phase barrier round separation, all-reduce-by-concatenation over the
// win channel, identical fault-plan keying — and the two algorithm
// consumers (multi_tlp's sharded claim protocol, the parallel mover's
// endpoint arbitration) must produce byte-identical partitions on every
// transport for every shards × threads × steal combination. Wire-only
// behaviour (telemetry counters, backpressure, garbled/truncated frames,
// reconnect backoff) is pinned down on the socket transports alone.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/multi_tlp.hpp"
#include "dist/claim_protocol.hpp"
#include "dist/fault_plan.hpp"
#include "dist/socket_fabric.hpp"
#include "dist/transport.hpp"
#include "dist/wire_format.hpp"
#include "gen/generators.hpp"
#include "partition/run_context.hpp"
#include "partition/validator.hpp"
#include "refine/parallel_mover.hpp"
#include "util/thread_pool.hpp"

namespace tlp {
namespace {

using dist::Transport;

PartitionConfig config_for(PartitionId p, std::uint64_t seed) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

/// Drives one full round on a fabric already loaded with sends: barrier
/// phase 1, collect every rank, surface wire faults.
template <class T>
std::vector<std::vector<T>> collect_round(dist::Fabric<T>& fabric) {
  fabric.end_round();
  std::vector<std::vector<T>> out(fabric.num_ranks());
  for (std::size_t r = 0; r < fabric.num_ranks(); ++r) {
    fabric.collect(r, out[r]);
  }
  fabric.raise_pending_error();
  return out;
}

class TransportConformance : public ::testing::TestWithParam<Transport> {
 protected:
  [[nodiscard]] bool on_wire() const {
    return GetParam() != Transport::kInProc;
  }
};

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformance,
                         ::testing::Values(Transport::kInProc,
                                           Transport::kSocket,
                                           Transport::kSocketTcp),
                         [](const auto& info) {
                           return std::string(
                               dist::transport_name(info.param));
                         });

// --------------------------------------------------------------------
// Mailbox-contract conformance: delivery order, counting, rounds.

TEST_P(TransportConformance, FifoPerLaneAscendingSenderSweep) {
  const auto fabric =
      dist::make_fabric<std::uint64_t>(GetParam(), /*ranks=*/3,
                                       /*senders=*/2);
  fabric->send(1, 2, 20);
  fabric->send(0, 2, 1);
  fabric->send(1, 2, 21);
  fabric->send(0, 0, 9);
  fabric->send(0, 2, 2);
  const auto rounds = collect_round(*fabric);
  EXPECT_EQ(rounds[0], (std::vector<std::uint64_t>{9}));
  EXPECT_TRUE(rounds[1].empty());
  // Ascending sender, FIFO within each lane.
  EXPECT_EQ(rounds[2], (std::vector<std::uint64_t>{1, 2, 20, 21}));
  // collect() is idempotent within a round.
  std::vector<std::uint64_t> again;
  fabric->collect(2, again);
  EXPECT_EQ(again, rounds[2]);
  EXPECT_EQ(fabric->messages_sent(), 5u);
  EXPECT_EQ(fabric->lane_sequence(0, 2), 2u);
  EXPECT_EQ(fabric->lane_sequence(1, 2), 2u);
  EXPECT_EQ(fabric->lane_sequence(0, 0), 1u);
  EXPECT_EQ(fabric->lane_sequence(1, 0), 0u);
}

TEST_P(TransportConformance, TypedClaimMessagesSurviveTheTrip) {
  const auto fabric =
      dist::make_fabric<dist::ClaimRequest>(GetParam(), 2, 3);
  const dist::ClaimRequest a{EdgeId{0xDEADBEEFCAFEull}, PartitionId{7}};
  const dist::ClaimRequest b{EdgeId{1}, PartitionId{0}};
  fabric->send(2, 1, a);
  fabric->send(0, 1, b);
  const auto rounds = collect_round(*fabric);
  EXPECT_EQ(rounds[1], (std::vector<dist::ClaimRequest>{b, a}));
}

TEST_P(TransportConformance, BarrierSeparatesRounds) {
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 2, 1);
  fabric->send(0, 0, 100);
  fabric->send(0, 1, 101);
  const auto first = collect_round(*fabric);
  EXPECT_EQ(first[0], (std::vector<std::uint64_t>{100}));
  EXPECT_EQ(first[1], (std::vector<std::uint64_t>{101}));
  fabric->clear_all_inboxes();  // barrier phase 2: round consumed
  fabric->send(0, 0, 200);
  const auto second = collect_round(*fabric);
  // Only the new round's messages — nothing left over from round one.
  EXPECT_EQ(second[0], (std::vector<std::uint64_t>{200}));
  EXPECT_TRUE(second[1].empty());
  fabric->clear_all_inboxes();
}

TEST_P(TransportConformance, UncollectedRoundNeverLeaksIntoTheNext) {
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 1, 1);
  fabric->send(0, 0, 1);
  fabric->end_round();
  fabric->clear_all_inboxes();  // round 0 ends without ever collecting
  fabric->send(0, 0, 2);
  const auto round = collect_round(*fabric);
  EXPECT_EQ(round[0], (std::vector<std::uint64_t>{2}));
}

TEST_P(TransportConformance, ConcurrentSendersStaySenderSerial) {
  constexpr std::size_t kSenders = 4;
  constexpr std::size_t kRanks = 3;
  constexpr std::uint64_t kPerLane = 200;
  const auto fabric =
      dist::make_fabric<std::uint64_t>(GetParam(), kRanks, kSenders);
  ThreadPool pool(kSenders);
  pool.run_indexed(kSenders, [&](std::size_t sender) {
    for (std::uint64_t i = 0; i < kPerLane; ++i) {
      for (std::size_t r = 0; r < kRanks; ++r) {
        fabric->send(sender, r, sender * 1000000 + i);
      }
    }
  });
  const auto rounds = collect_round(*fabric);
  for (std::size_t r = 0; r < kRanks; ++r) {
    ASSERT_EQ(rounds[r].size(), kSenders * kPerLane) << "rank " << r;
    // The sweep is ascending-sender, FIFO per lane: sender s's slice is
    // exactly its send order.
    for (std::size_t s = 0; s < kSenders; ++s) {
      for (std::uint64_t i = 0; i < kPerLane; ++i) {
        EXPECT_EQ(rounds[r][s * kPerLane + i], s * 1000000 + i)
            << "rank " << r << ", sender " << s << ", index " << i;
      }
    }
  }
  EXPECT_EQ(fabric->messages_sent(), kSenders * kRanks * kPerLane);
}

// The all-reduce shape both algorithm consumers use: a single-rank win
// channel whose ascending-sender collect IS the ordered concatenation the
// old tree fold computed.
TEST_P(TransportConformance, WinChannelCollectIsOrderedConcatenation) {
  constexpr std::size_t kShards = 5;
  const auto fabric =
      dist::make_fabric<dist::ClaimWin>(GetParam(), 1, kShards);
  std::vector<dist::ClaimWin> expected;
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const dist::ClaimWin win{EdgeId{s * 100 + i},
                               static_cast<PartitionId>(s)};
      fabric->send(s, 0, win);
      expected.push_back(win);  // the linear fold, in contribution order
    }
  }
  const auto rounds = collect_round(*fabric);
  EXPECT_EQ(rounds[0], expected);
}

// --------------------------------------------------------------------
// Wire telemetry and backpressure (socket transports only assert > 0).

TEST_P(TransportConformance, WireTelemetryCountsFramesAndBytes) {
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 2, 1);
  fabric->send(0, 0, 1);
  fabric->send(0, 1, 2);
  (void)collect_round(*fabric);
  fabric->clear_all_inboxes();
  const dist::TransportTelemetry wire = fabric->wire_telemetry();
  if (on_wire()) {
    // 2 data frames + 2 ARRIVE + 2 RELEASE at 24B header minimum each.
    EXPECT_GE(wire.frames_sent, 6u);
    EXPECT_GE(wire.bytes_on_wire,
              wire.frames_sent * dist::wire::kHeaderSize);
    EXPECT_GE(wire.barrier_wait_s, 0.0);
  } else {
    EXPECT_EQ(wire.frames_sent, 0u);
    EXPECT_EQ(wire.bytes_on_wire, 0u);
    EXPECT_EQ(wire.backpressure_stalls, 0u);
    EXPECT_EQ(wire.barrier_wait_s, 0.0);
  }
}

TEST_P(TransportConformance, BackpressureStallsAreCountedAndLossless) {
  constexpr std::uint64_t kFlood = 40000;  // ~1.3MB of frames, one lane
  dist::SocketFabricConfig config;
  config.send_buffer_bytes = 4096;  // the kernel clamps upward; still tiny
  const auto fabric =
      dist::make_fabric<std::uint64_t>(GetParam(), 1, 1, config);
  for (std::uint64_t i = 0; i < kFlood; ++i) fabric->send(0, 0, i);
  const auto rounds = collect_round(*fabric);
  ASSERT_EQ(rounds[0].size(), kFlood);
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    ASSERT_EQ(rounds[0][i], i) << "index " << i;
  }
  if (on_wire()) {
    // The flood dwarfs any send buffer: the sender must have stalled and
    // self-drained, and no message may be lost doing so.
    EXPECT_GT(fabric->wire_telemetry().backpressure_stalls, 0u);
  }
}

// --------------------------------------------------------------------
// Fault-plan conformance: one plan, same keying, both transports.

TEST_P(TransportConformance, FaultPlanMatchesInProcKeying) {
  dist::FaultPlan plan;
  plan.seed = 91;
  plan.drop_permille = 250;
  plan.dup_permille = 250;
  plan.reorder = true;
  const auto run = [&](Transport transport) {
    const auto fabric = dist::make_fabric<std::uint64_t>(transport, 3, 2);
    fabric->set_fault_plan(plan);
    for (std::uint64_t i = 0; i < 60; ++i) {
      fabric->send(i % 2, i % 3, i);
    }
    return collect_round(*fabric);
  };
  // The plan is keyed on (seed, sender, rank, lane sequence) — transport-
  // independent coordinates — so it must hit the SAME messages here as on
  // the in-process fabric.
  EXPECT_EQ(run(GetParam()), run(Transport::kInProc));
}

TEST_P(TransportConformance, DeadLaneSeversExactlyThatLane) {
  dist::FaultPlan plan;
  plan.dead_sender = 1;
  plan.dead_rank = 0;
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 2, 2);
  fabric->set_fault_plan(plan);
  fabric->send(0, 0, 1);
  fabric->send(1, 0, 2);  // severed
  fabric->send(1, 1, 3);  // same sender, different rank: alive
  const auto rounds = collect_round(*fabric);
  EXPECT_EQ(rounds[0], (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(rounds[1], (std::vector<std::uint64_t>{3}));
  // The severed send still advanced the lane sequence (the coordinate
  // ClaimDivergedError reports).
  EXPECT_EQ(fabric->lane_sequence(1, 0), 1u);
  EXPECT_EQ(fabric->messages_sent(), 3u);
}

TEST_P(TransportConformance, SlowPeerDelaysButDeliversIdentically) {
  dist::FaultPlan plan;
  plan.delay_micros = 200;
  plan.slow_rank = 1;
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 2, 1);
  fabric->set_fault_plan(plan);
  for (std::uint64_t i = 0; i < 20; ++i) fabric->send(0, i % 2, i);
  const auto rounds = collect_round(*fabric);
  EXPECT_EQ(rounds[0].size(), 10u);
  EXPECT_EQ(rounds[1].size(), 10u);  // slowed, never lost
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rounds[0][i], 2 * i);
    EXPECT_EQ(rounds[1][i], 2 * i + 1);
  }
}

TEST_P(TransportConformance, GarbledFrameRaisesChecksumErrorCleanly) {
  if (!on_wire()) GTEST_SKIP() << "wire fault: no wire on inproc";
  dist::FaultPlan plan;
  plan.garble_permille = 1000;
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 1, 1);
  fabric->set_fault_plan(plan);
  fabric->send(0, 0, 42);
  fabric->end_round();
  std::vector<std::uint64_t> out;
  fabric->collect(0, out);  // must NOT throw (pool-worker contract)
  try {
    fabric->raise_pending_error();
    FAIL() << "garbled frame did not surface an error";
  } catch (const dist::wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_P(TransportConformance, TruncatedPayloadRaisesDecodeErrorCleanly) {
  if (!on_wire()) GTEST_SKIP() << "wire fault: no wire on inproc";
  dist::FaultPlan plan;
  plan.truncate_permille = 1000;
  const auto fabric = dist::make_fabric<std::uint64_t>(GetParam(), 1, 1);
  fabric->set_fault_plan(plan);
  fabric->send(0, 0, 42);
  fabric->end_round();
  std::vector<std::uint64_t> out;
  fabric->collect(0, out);
  try {
    fabric->raise_pending_error();
    FAIL() << "truncated payload did not surface an error";
  } catch (const dist::wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

// --------------------------------------------------------------------
// Algorithm byte-identity: the acceptance matrix. The shared-memory path
// (num_shards = 0) is the baseline; every transport must reproduce its
// bytes for every shards × threads × steal combination.

TEST_P(TransportConformance, MultiTlpByteIdenticalAcrossShardsThreadsSteal) {
  const Graph g = gen::sbm(300, 1900, 6, 0.85, 61);
  const auto config = config_for(6, 37);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  // TCP pays a listen/connect handshake per fabric; trim its matrix to
  // keep the suite fast — kSocket runs the full acceptance grid.
  const bool full = GetParam() != Transport::kSocketTcp;
  const std::vector<std::uint32_t> shard_counts =
      full ? std::vector<std::uint32_t>{1, 4, 64}
           : std::vector<std::uint32_t>{4, 64};
  const std::vector<std::size_t> thread_counts =
      full ? std::vector<std::size_t>{1, 2, 8, 0}  // 0 = hardware
           : std::vector<std::size_t>{1, 8};
  for (const std::uint32_t shards : shard_counts) {
    for (const std::size_t threads : thread_counts) {
      for (const bool steal : {false, true}) {
        if (!full && !steal) continue;
        MultiTlpOptions o;
        o.num_shards = shards;
        o.num_threads = threads;
        o.steal = steal;
        o.transport = GetParam();
        const EdgePartition part =
            MultiTlpPartitioner{o}.partition(g, config);
        EXPECT_EQ(part.raw(), base.raw())
            << dist::transport_name(GetParam()) << ": " << shards
            << " shards, " << threads << " threads, steal " << steal;
      }
    }
  }
}

TEST_P(TransportConformance, RefineParallelByteIdenticalAcrossTransports) {
  const Graph g = gen::chung_lu_power_law(400, 2200, 2.2, 71);
  PartitionConfig config = config_for(6, 71);
  const EdgePartition start =
      baselines::RandomPartitioner{}.partition(g, config);
  const auto run = [&](std::uint32_t shards, std::size_t threads,
                       std::optional<Transport> transport) {
    EdgePartition part = start;
    refine::ParallelOptions o;
    o.num_shards = shards;
    o.num_threads = threads;
    o.transport = transport;
    RunContext ctx;
    const refine::ParallelStats stats =
        refine::refine_parallel(g, part, o, ctx);
    EXPECT_GT(stats.moves, 0u);
    return part.raw();
  };
  const std::vector<PartitionId> base = run(0, 1, std::nullopt);
  const bool full = GetParam() != Transport::kSocketTcp;
  const std::vector<std::uint32_t> shard_counts =
      full ? std::vector<std::uint32_t>{1, 4, 64}
           : std::vector<std::uint32_t>{4};
  for (const std::uint32_t shards : shard_counts) {
    for (const std::size_t threads :
         full ? std::vector<std::size_t>{1, 2, 8}
              : std::vector<std::size_t>{8}) {
      EXPECT_EQ(run(shards, threads, GetParam()), base)
          << dist::transport_name(GetParam()) << ": " << shards
          << " claim shards, " << threads << " threads";
    }
  }
}

// Duplicates and reorders on the claim fabric never change the bytes —
// on ANY transport (resolution is a pure function of the request set).
TEST_P(TransportConformance, MultiTlpDupReorderFaultsKeepBytesIdentical) {
  const Graph g = gen::sbm(240, 1400, 5, 0.85, 83);
  const auto config = config_for(5, 41);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  MultiTlpOptions o;
  o.num_shards = 7;
  o.transport = GetParam();
  o.comm_faults = dist::FaultPlan{};
  o.comm_faults->seed = 7;
  o.comm_faults->dup_permille = 300;
  o.comm_faults->reorder = true;
  const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
  EXPECT_EQ(part.raw(), base.raw());
}

// Every injected fault ends one of exactly two ways: a clean error or the
// baseline bytes. A severed directed lane loses real claim requests, so
// multi_tlp must raise ClaimDivergedError — with the lossy lane attached.
TEST_P(TransportConformance, DeadLaneFailsLoudlyOrStaysIdentical) {
  const Graph g = gen::erdos_renyi(140, 600, 89);
  const auto config = config_for(4, 43);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  MultiTlpOptions o;
  o.num_shards = 4;
  o.transport = GetParam();
  o.comm_faults = dist::FaultPlan{};
  o.comm_faults->dead_sender = 2;  // partition 2 cannot reach shard 1
  o.comm_faults->dead_rank = 1;
  try {
    const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
    EXPECT_EQ(part.raw(), base.raw());
  } catch (const dist::ClaimDivergedError& e) {
    EXPECT_EQ(e.sender_rank(), 2u);
    EXPECT_EQ(e.receiver_rank(), 1u);
    EXPECT_GT(e.lane_sequence(), 0u);
    const std::string what = e.what();
    EXPECT_NE(what.find("claim protocol diverged"), std::string::npos);
    EXPECT_NE(what.find("lane 2 -> 1"), std::string::npos) << what;
  }
}

TEST_P(TransportConformance, SlowPeerKeepsMultiTlpBytesIdentical) {
  const Graph g = gen::caveman_graph(4, 6);
  const auto config = config_for(3, 47);
  const EdgePartition base = MultiTlpPartitioner{}.partition(g, config);
  MultiTlpOptions o;
  o.num_shards = 4;
  o.transport = GetParam();
  o.comm_faults = dist::FaultPlan{};
  o.comm_faults->delay_micros = 100;
  o.comm_faults->slow_rank = 2;
  const EdgePartition part = MultiTlpPartitioner{o}.partition(g, config);
  EXPECT_EQ(part.raw(), base.raw());
}

// Wire corruption mid-protocol must abort the run cleanly (never a bad
// partition): the receiver's checksum or typed decoder trips and the
// barrier rethrows.
TEST_P(TransportConformance, WireFaultsAbortMultiTlpCleanly) {
  if (!on_wire()) GTEST_SKIP() << "wire fault: no wire on inproc";
  const Graph g = gen::erdos_renyi(100, 420, 97);
  const auto config = config_for(3, 53);
  for (const bool garble : {true, false}) {
    MultiTlpOptions o;
    o.num_shards = 3;
    o.transport = GetParam();
    o.comm_faults = dist::FaultPlan{};
    o.comm_faults->seed = 5;
    if (garble) {
      o.comm_faults->garble_permille = 1000;
    } else {
      o.comm_faults->truncate_permille = 1000;
    }
    EXPECT_THROW((void)MultiTlpPartitioner{o}.partition(g, config),
                 dist::wire::WireError)
        << (garble ? "garble" : "truncate");
  }
}

// --------------------------------------------------------------------
// ClaimDivergedError payload (transport-independent, run once).

TEST(ClaimDivergedError, CarriesLaneCoordinatesAndReadableMessage) {
  const dist::ClaimDivergedError e("multi_tlp", 3, 9, 1234, 56);
  EXPECT_EQ(e.sender_rank(), 3u);
  EXPECT_EQ(e.receiver_rank(), 9u);
  EXPECT_EQ(e.id(), 1234u);
  EXPECT_EQ(e.lane_sequence(), 56u);
  const std::string what = e.what();
  EXPECT_NE(what.find("multi_tlp"), std::string::npos);
  EXPECT_NE(what.find("claim protocol diverged"), std::string::npos);
  EXPECT_NE(what.find("sender 3"), std::string::npos);
  EXPECT_NE(what.find("id 1234"), std::string::npos);
  EXPECT_NE(what.find("lane 3 -> 9"), std::string::npos);
  EXPECT_NE(what.find("lane sequence 56"), std::string::npos);
}

// --------------------------------------------------------------------
// Connection lifecycle: reconnect-with-backoff against a late listener.

TEST(SocketTransport, ConnectBackoffWaitsForLateListener) {
  // Bind (fixing the port) but hold off listen(): connects are refused
  // until the listener thread wakes, so only the backoff loop can win.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_EQ(::listen(listener, 1), 0);
  });
  const int fd = dist::socket_detail::connect_with_backoff(
      port, /*max_attempts=*/200, std::chrono::milliseconds(1));
  EXPECT_GE(fd, 0);
  ::close(fd);
  late.join();
  ::close(listener);
}

TEST(SocketTransport, ConnectBackoffExhaustsBudgetAndThrows) {
  // Grab a port, then close it so nothing listens there.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(probe);
  try {
    (void)dist::socket_detail::connect_with_backoff(
        port, /*max_attempts=*/3, std::chrono::milliseconds(1));
    FAIL() << "connect to a dead port did not throw";
  } catch (const dist::wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("backoff"), std::string::npos)
        << e.what();
  }
}

// --------------------------------------------------------------------
// The TLP_TRANSPORT environment knob.

class TransportEnvGuard {
 public:
  TransportEnvGuard() {
    const char* old = std::getenv("TLP_TRANSPORT");
    if (old != nullptr) saved_ = old;
  }
  ~TransportEnvGuard() {
    if (saved_) {
      ::setenv("TLP_TRANSPORT", saved_->c_str(), 1);
    } else {
      ::unsetenv("TLP_TRANSPORT");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(TransportEnv, ParsesEveryKnobValueAndRejectsTypos) {
  const TransportEnvGuard guard;
  ::unsetenv("TLP_TRANSPORT");
  EXPECT_EQ(dist::transport_from_env(), std::nullopt);
  EXPECT_EQ(dist::resolve_transport(std::nullopt), Transport::kInProc);
  ::setenv("TLP_TRANSPORT", "", 1);
  EXPECT_EQ(dist::transport_from_env(), std::nullopt);
  ::setenv("TLP_TRANSPORT", "inproc", 1);
  EXPECT_EQ(dist::transport_from_env(), Transport::kInProc);
  ::setenv("TLP_TRANSPORT", "socket", 1);
  EXPECT_EQ(dist::transport_from_env(), Transport::kSocket);
  EXPECT_EQ(dist::resolve_transport(std::nullopt), Transport::kSocket);
  // The explicit option outranks the environment.
  EXPECT_EQ(dist::resolve_transport(Transport::kInProc),
            Transport::kInProc);
  ::setenv("TLP_TRANSPORT", "tcp", 1);
  EXPECT_EQ(dist::transport_from_env(), Transport::kSocketTcp);
  ::setenv("TLP_TRANSPORT", "udp", 1);
  try {
    (void)dist::transport_from_env();
    FAIL() << "typo'd TLP_TRANSPORT did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("udp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("inproc|socket|tcp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace tlp
