// Randomized differential fuzz for the dist comm layer, in the mold of
// tests/io_fuzz_test.cpp: seeded random op scripts (send / collect /
// clear_inbox / all-reduce rounds) are replayed against a deliberately
// naive sequential oracle — a flat log of sends, filtered per collect —
// and every divergence is a bug. A second pass replays each faulty script
// on two fabrics with the same FaultPlan and demands byte-identical
// delivery (the determinism contract behind the multi_tlp fault tests).
// Runs in the ASan/UBSan legs of tools/check.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "dist/all_reduce.hpp"
#include "dist/comm_fabric.hpp"
#include "dist/fault_plan.hpp"

namespace tlp::dist {
namespace {

/// The oracle: every accepted send in order, replayed per collect by a
/// stable sweep (ascending sender, send order within a sender) — computed
/// from the flat log, not from per-lane state, so it shares no structure
/// with Mailbox.
struct OracleSend {
  std::size_t sender;
  std::size_t rank;
  std::uint64_t payload;
};

std::vector<std::uint64_t> oracle_collect(const std::vector<OracleSend>& log,
                                          std::size_t rank,
                                          std::size_t num_senders) {
  std::vector<std::uint64_t> out;
  for (std::size_t sender = 0; sender < num_senders; ++sender) {
    for (const OracleSend& s : log) {
      if (s.rank == rank && s.sender == sender) out.push_back(s.payload);
    }
  }
  return out;
}

constexpr std::size_t kOpsPerScript = 5000;

TEST(DistFuzz, FaultFreeFabricMatchesSequentialOracle) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull, 987654321ull}) {
    std::mt19937_64 rng(seed);
    const std::size_t num_ranks = 1 + rng() % 4;
    const std::size_t num_senders = 1 + rng() % 6;
    CommFabric<std::uint64_t> fabric(num_ranks, num_senders);
    std::vector<OracleSend> log;
    std::uint64_t sent = 0;
    for (std::size_t op = 0; op < kOpsPerScript; ++op) {
      switch (rng() % 8) {
        case 0: {  // collect a random rank and diff against the oracle
          const std::size_t rank = rng() % num_ranks;
          std::vector<std::uint64_t> got;
          fabric.collect(rank, got);
          ASSERT_EQ(got, oracle_collect(log, rank, num_senders))
              << "seed " << seed << " op " << op << " rank " << rank;
          break;
        }
        case 1: {  // consume a random rank's inbox
          const std::size_t rank = rng() % num_ranks;
          fabric.clear_inbox(rank);
          log.erase(std::remove_if(
                        log.begin(), log.end(),
                        [rank](const OracleSend& s) { return s.rank == rank; }),
                    log.end());
          break;
        }
        default: {  // mostly sends
          const std::size_t sender = rng() % num_senders;
          const std::size_t rank = rng() % num_ranks;
          const std::uint64_t payload = rng();
          fabric.send(sender, rank, payload);
          log.push_back(OracleSend{sender, rank, payload});
          ++sent;
          break;
        }
      }
    }
    EXPECT_EQ(fabric.messages_sent(), sent) << "seed " << seed;
    for (std::size_t rank = 0; rank < num_ranks; ++rank) {
      std::vector<std::uint64_t> got;
      fabric.collect(rank, got);
      EXPECT_EQ(got, oracle_collect(log, rank, num_senders))
          << "seed " << seed << " final rank " << rank;
    }
  }
}

TEST(DistFuzz, FaultyFabricIsDeterministicUnderReplay) {
  for (const std::uint64_t seed : {3ull, 42ull, 31337ull}) {
    std::mt19937_64 plan_rng(seed);
    FaultPlan plan;
    plan.seed = plan_rng();
    plan.drop_permille = plan_rng() % 400;
    plan.dup_permille = plan_rng() % 400;
    plan.reorder = (plan_rng() % 2) == 1;
    const std::size_t num_ranks = 1 + plan_rng() % 4;
    const std::size_t num_senders = 1 + plan_rng() % 6;

    // Replay the SAME op script on two independent fabrics; every
    // observable (deliveries, counters) must match byte for byte.
    auto replay = [&](CommFabric<std::uint64_t>& fabric) {
      fabric.set_fault_plan(plan);
      std::mt19937_64 rng(seed * 2 + 1);
      std::vector<std::vector<std::uint64_t>> observations;
      for (std::size_t op = 0; op < kOpsPerScript; ++op) {
        switch (rng() % 8) {
          case 0: {
            std::vector<std::uint64_t> got;
            fabric.collect(rng() % num_ranks, got);
            observations.push_back(std::move(got));
            break;
          }
          case 1:
            fabric.clear_inbox(rng() % num_ranks);
            break;
          default:
            fabric.send(rng() % num_senders, rng() % num_ranks, rng());
            break;
        }
      }
      observations.push_back({fabric.messages_sent()});
      return observations;
    };
    CommFabric<std::uint64_t> a(num_ranks, num_senders);
    CommFabric<std::uint64_t> b(num_ranks, num_senders);
    EXPECT_EQ(replay(a), replay(b)) << "seed " << seed;
  }
}

TEST(DistFuzz, RandomAllReduceRoundsAgreeTreeVsLinearVsOracle) {
  const auto concat = [](std::vector<std::uint64_t> x,
                         const std::vector<std::uint64_t>& y) {
    x.insert(x.end(), y.begin(), y.end());
    return x;
  };
  for (const std::uint64_t seed : {5ull, 99ull, 4096ull}) {
    std::mt19937_64 rng(seed);
    const std::size_t num_ranks = 1 + rng() % 9;
    AllReduce<std::uint64_t> ar(num_ranks);
    for (std::size_t round = 0; round < 200; ++round) {
      std::vector<std::uint64_t> expected;
      for (std::size_t r = 0; r < num_ranks; ++r) {
        std::vector<std::uint64_t> contribution(rng() % 7);
        for (std::uint64_t& v : contribution) v = rng();
        expected.insert(expected.end(), contribution.begin(),
                        contribution.end());
        ar.contribute(r, std::move(contribution));
      }
      ASSERT_EQ(ar.reduce(concat), expected)
          << "seed " << seed << " round " << round;
      ASSERT_EQ(ar.reduce_linear(concat), expected)
          << "seed " << seed << " round " << round;
      ar.reset();
    }
  }
}

}  // namespace
}  // namespace tlp::dist
