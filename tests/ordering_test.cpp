// Tests for vertex/edge stream orderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/ordering.hpp"

namespace tlp {
namespace {

TEST(DfsOrder, PathFromEnd) {
  const Graph g = gen::path_graph(5);
  const auto order = dfs_order(g, 0);
  EXPECT_EQ(order, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(DfsOrder, VisitsSmallestNeighborFirst) {
  // Star: DFS from center should visit leaves in ascending order... DFS
  // goes deep: center, leaf1, back, leaf2, ... all depth-1 here.
  const Graph g = gen::star_graph(4);
  const auto order = dfs_order(g, 0);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(DfsOrder, OnlyOwnComponent) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {2, 3}});
  EXPECT_EQ(dfs_order(g, 0).size(), 2u);
  EXPECT_THROW(dfs_order(g, 9), std::out_of_range);
}

class StreamOrderTest : public ::testing::TestWithParam<StreamOrder> {};

TEST_P(StreamOrderTest, IsAPermutationOfEdgeIds) {
  const Graph g = gen::erdos_renyi(80, 300, 101);
  const auto order = edge_stream_order(g, GetParam(), 5);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(g.num_edges()));
  std::vector<EdgeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(sorted[e], e);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, StreamOrderTest,
                         ::testing::Values(StreamOrder::kNatural,
                                           StreamOrder::kRandom,
                                           StreamOrder::kBfs,
                                           StreamOrder::kDfs));

TEST(StreamOrders, NaturalIsIdentity) {
  const Graph g = gen::path_graph(6);
  const auto order = edge_stream_order(g, StreamOrder::kNatural);
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(order[e], e);
}

TEST(StreamOrders, RandomIsSeedDeterministic) {
  const Graph g = gen::erdos_renyi(50, 150, 103);
  EXPECT_EQ(edge_stream_order(g, StreamOrder::kRandom, 7),
            edge_stream_order(g, StreamOrder::kRandom, 7));
  EXPECT_NE(edge_stream_order(g, StreamOrder::kRandom, 7),
            edge_stream_order(g, StreamOrder::kRandom, 8));
}

TEST(StreamOrders, BfsFrontLoadsTheSourceNeighborhood) {
  // On a path graph the BFS order from vertex 0 is the natural chain:
  // early edges must touch low-rank vertices.
  const Graph g = gen::path_graph(20);
  const auto order = edge_stream_order(g, StreamOrder::kBfs);
  // First edge must be incident to vertex 0 (rank 0).
  const Edge& first = g.edge(order.front());
  EXPECT_TRUE(first.u == 0 || first.v == 0);
  // Edge ranks must be non-decreasing in the min endpoint's BFS rank — on a
  // path, BFS rank == vertex id, so min endpoints must be sorted.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(g.edge(order[i - 1]).u, g.edge(order[i]).u);
  }
}

TEST(StreamOrders, TraversalOrdersCoverDisconnectedGraphs) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {2, 3}, {4, 5}});
  for (const StreamOrder mode : {StreamOrder::kBfs, StreamOrder::kDfs}) {
    const auto order = edge_stream_order(g, mode);
    EXPECT_EQ(order.size(), 3u);
  }
}

}  // namespace
}  // namespace tlp
