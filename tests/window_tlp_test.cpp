// Tests for the sliding-window streaming TLP (the paper's Section-V
// future-work direction).
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/baselines.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"
#include "stream/window_tlp.hpp"

namespace tlp::stream {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(EdgeStreams, VectorStreamYieldsAllEdgesInOrder) {
  VectorEdgeStream s({{0, 1}, {1, 2}, {2, 3}}, 4);
  EXPECT_EQ(s.total_edges(), 3u);
  EXPECT_EQ(s.num_vertices(), 4u);
  auto a = s.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->id, 0u);
  EXPECT_EQ(a->edge, (Edge{0, 1}));
  EXPECT_TRUE(s.next().has_value());
  EXPECT_TRUE(s.next().has_value());
  EXPECT_FALSE(s.next().has_value());
}

TEST(EdgeStreams, GraphStreamIsSeededPermutationOfEdgeIds) {
  const Graph g = gen::erdos_renyi(50, 120, 3);
  GraphEdgeStream s(g, 9);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_edges()), false);
  std::size_t count = 0;
  while (const auto e = s.next()) {
    ASSERT_LT(e->id, g.num_edges());
    EXPECT_FALSE(seen[static_cast<std::size_t>(e->id)]);
    seen[static_cast<std::size_t>(e->id)] = true;
    EXPECT_EQ(g.edge(e->id), e->edge.canonical());
    ++count;
  }
  EXPECT_EQ(count, g.num_edges());
}

TEST(WindowTlp, CompleteAndInRangeOnVariousGraphs) {
  const WindowTlpPartitioner window;
  for (const Graph& g :
       {gen::path_graph(40), gen::star_graph(40), gen::complete_graph(12),
        gen::caveman_graph(6, 6), gen::erdos_renyi(150, 600, 5),
        gen::barabasi_albert(150, 3, 6)}) {
    const auto config = config_for(4);
    const EdgePartition part = window.partition(g, config);
    EXPECT_TRUE(validate(g, part, config).ok()) << g.summary();
  }
}

TEST(WindowTlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(300, 3, 7);
  const WindowTlpPartitioner window;
  const EdgePartition a = window.partition(g, config_for(5, 11));
  const EdgePartition b = window.partition(g, config_for(5, 11));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(WindowTlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)WindowTlpPartitioner{}.partition(g, config_for(0)),
               std::invalid_argument);
}

TEST(WindowTlp, DefaultWindowIsTwiceCapacity) {
  const Graph g = gen::erdos_renyi(100, 400, 8);
  GraphEdgeStream source(g, 1);
  WindowStats stats;
  const auto config = config_for(4);
  (void)WindowTlpPartitioner{}.partition_stream(source, config, &stats);
  EXPECT_EQ(stats.window_capacity, 2 * config.capacity(g.num_edges()));
}

TEST(WindowTlp, HandlesSelfLoopsInRawStreams) {
  // Raw streams (unlike Graph) may contain self-loops.
  VectorEdgeStream source({{0, 1}, {2, 2}, {1, 2}, {0, 0}}, 3);
  WindowStats stats;
  const auto assignment = WindowTlpPartitioner{}.partition_stream(
      source, config_for(2), &stats);
  ASSERT_EQ(assignment.size(), 4u);
  for (const PartitionId p : assignment) EXPECT_LT(p, 2u);
  EXPECT_EQ(stats.self_loops, 2u);
}

TEST(WindowTlp, TinyWindowStillCoversEverything) {
  const Graph g = gen::erdos_renyi(200, 800, 9);
  WindowTlpOptions options;
  options.window_capacity = 16;  // absurdly small
  const WindowTlpPartitioner window(options);
  const auto config = config_for(4);
  const EdgePartition part = window.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

TEST(WindowTlp, LargeWindowApproachesTlpQuality) {
  const Graph g = gen::sbm(800, 6400, 16, 0.9, 10);
  const auto config = config_for(8);

  WindowTlpOptions big;
  big.window_capacity = g.num_edges();  // window == whole graph
  const double rf_window =
      replication_factor(g, WindowTlpPartitioner{big}.partition(g, config));
  const double rf_tlp =
      replication_factor(g, TlpPartitioner{}.partition(g, config));
  const double rf_random = replication_factor(
      g, baselines::RandomPartitioner{}.partition(g, config));

  // Whole-graph window must land in TLP territory, far below random.
  EXPECT_LT(rf_window, rf_random * 0.75);
  EXPECT_LT(rf_window, rf_tlp * 1.5);
}

TEST(WindowTlp, QualityDegradesGracefullyWithWindow) {
  const Graph g = gen::sbm(600, 4800, 12, 0.9, 13);
  const auto config = config_for(6);
  const auto rf_for = [&](EdgeId window) {
    WindowTlpOptions options;
    options.window_capacity = window;
    return replication_factor(
        g, WindowTlpPartitioner{options}.partition(g, config));
  };
  const double tiny = rf_for(64);
  const double huge = rf_for(g.num_edges());
  EXPECT_LT(huge, tiny);  // more memory, better partitions
}

TEST(WindowTlp, StatsAreReported) {
  const Graph g = gen::erdos_renyi(300, 1200, 14);
  GraphEdgeStream source(g, 2);
  WindowStats stats;
  const auto config = config_for(5);
  const auto assignment = WindowTlpPartitioner{}.partition_stream(
      source, config, &stats);
  EXPECT_GT(stats.refills, 0u);
  EXPECT_GT(stats.reseeds, 0u);
  EXPECT_GT(stats.stage1_joins + stats.stage2_joins, 0u);
  EXPECT_EQ(assignment.size(), static_cast<std::size_t>(g.num_edges()));
}

TEST(WindowTlp, LoadStaysBalancedEnough) {
  const Graph g = gen::barabasi_albert(1000, 4, 15);
  const auto config = config_for(8);
  const EdgePartition part = WindowTlpPartitioner{}.partition(g, config);
  EXPECT_LT(balance_factor(part), 1.6);
}

}  // namespace
}  // namespace tlp::stream
