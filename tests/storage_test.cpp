// Storage-policy seam: tier round-trips, word/span boundaries (vertex 0,
// last vertex, isolated vertices), hybrid residency accounting, the TLPC
// header/payload validation, and spill-file lifecycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/csr_format.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/storage.hpp"

namespace tlp {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

fs::path temp_file(const std::string& name) {
  return fs::temp_directory_path() / name;
}

/// Every observable Graph accessor must agree between two graphs.
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].vertex, nb[i].vertex);
      EXPECT_EQ(na[i].edge, nb[i].edge);
    }
    const auto ia = a.neighbor_ids(v);
    const auto ib = b.neighbor_ids(v);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i) EXPECT_EQ(ia[i], ib[i]);
  }
}

/// n=7 with structure at every boundary the span math can get wrong:
/// vertex 0 (first word), vertex 6 (last vertex, offsets[n] edge),
/// isolated vertices 2 and 5 in the middle, and an isolated-at-the-end
/// shape when built with n=8.
Graph boundary_graph(VertexId n = 7) {
  return Graph::from_edges(
      n, {{0, 1}, {0, 6}, {1, 6}, {3, 4}, {4, 6}});
}

TEST(StorageOptions, ParseAcceptsAllTiers) {
  EXPECT_EQ(StorageOptions::parse("in_memory").tier, StorageTier::kInMemory);
  EXPECT_EQ(StorageOptions::parse("memory").tier, StorageTier::kInMemory);
  EXPECT_EQ(StorageOptions::parse("mmap").tier, StorageTier::kMmap);
  const StorageOptions h = StorageOptions::parse("hybrid:16:1048576");
  EXPECT_EQ(h.tier, StorageTier::kHybrid);
  EXPECT_EQ(h.degree_threshold, 16u);
  EXPECT_EQ(h.pinned_cache_bytes, 1048576u);
  EXPECT_EQ(StorageOptions::parse("hybrid:inf").degree_threshold, kMax);
  EXPECT_EQ(StorageOptions::parse("hybrid:max").degree_threshold, kMax);
  // Defaults survive when fields are omitted.
  const StorageOptions d = StorageOptions::parse("hybrid");
  EXPECT_EQ(d.degree_threshold, StorageOptions{}.degree_threshold);
}

TEST(StorageOptions, ParseRejectsGarbage) {
  EXPECT_THROW((void)StorageOptions::parse(""), std::invalid_argument);
  EXPECT_THROW((void)StorageOptions::parse("disk"), std::invalid_argument);
  EXPECT_THROW((void)StorageOptions::parse("hybrid:abc"),
               std::invalid_argument);
  EXPECT_THROW((void)StorageOptions::parse("hybrid:1:2:3"),
               std::invalid_argument);
  EXPECT_THROW((void)StorageOptions::parse("mmap:"), std::invalid_argument);
}

TEST(Storage, TierNames) {
  EXPECT_EQ(storage_tier_name(StorageTier::kInMemory), "in_memory");
  EXPECT_EQ(storage_tier_name(StorageTier::kMmap), "mmap");
  EXPECT_EQ(storage_tier_name(StorageTier::kHybrid), "hybrid");
}

TEST(Storage, DefaultGraphIsInMemory) {
  const Graph g = boundary_graph();
  EXPECT_EQ(g.storage_tier(), StorageTier::kInMemory);
  const MemoryFootprint fp = g.memory_footprint();
  EXPECT_GT(fp.resident_bytes, 0u);
  EXPECT_EQ(fp.mapped_bytes, 0u);
  EXPECT_EQ(g.summary(), "Graph(n=7, m=5)");  // no storage tag by default
}

TEST(Storage, CsrRoundTripOnEveryTier) {
  const Graph original = boundary_graph(/*n=*/8);  // vertex 7 isolated at end
  const fs::path path = temp_file("tlp_storage_roundtrip.tlpc");
  io::write_csr_file(original, path);

  std::vector<StorageOptions> configs;
  for (const char* tier : {"in_memory", "mmap"}) {
    configs.push_back(StorageOptions::parse(tier));
  }
  for (const std::size_t tau : {std::size_t{0}, std::size_t{2}, kMax}) {
    StorageOptions o;
    o.tier = StorageTier::kHybrid;
    o.degree_threshold = tau;
    configs.push_back(o);
    o.pinned_cache_bytes = 0;  // and with pinning disabled
    configs.push_back(o);
  }
  for (const StorageOptions& options : configs) {
    SCOPED_TRACE(std::string(storage_tier_name(options.tier)) + " tau=" +
                 std::to_string(options.degree_threshold) + " pin=" +
                 std::to_string(options.pinned_cache_bytes));
    const Graph loaded = io::load_csr_file(path, options);
    EXPECT_EQ(loaded.storage_tier(), options.tier);
    expect_same_graph(original, loaded);
    EXPECT_TRUE(loaded.has_edge(0, 6));
    EXPECT_FALSE(loaded.has_edge(2, 3));
    EXPECT_EQ(loaded.common_neighbor_count(0, 1),
              original.common_neighbor_count(0, 1));
  }
  fs::remove(path);
}

TEST(Storage, EmptyGraphRoundTrip) {
  const Graph empty = Graph::from_edges(0, {});
  const fs::path path = temp_file("tlp_storage_empty.tlpc");
  io::write_csr_file(empty, path);
  for (const char* spec : {"in_memory", "mmap", "hybrid:0"}) {
    const Graph loaded = io::load_csr_file(path, StorageOptions::parse(spec));
    EXPECT_EQ(loaded.num_vertices(), 0u);
    EXPECT_EQ(loaded.num_edges(), 0u);
    EXPECT_TRUE(loaded.empty());
  }
  fs::remove(path);
}

TEST(Storage, SummaryTagsNonDefaultTiers) {
  const Graph g = boundary_graph();
  const Graph m = io::with_tier(g, StorageOptions::parse("mmap"));
  EXPECT_NE(m.summary().find("storage=mmap"), std::string::npos);
  const Graph h = io::with_tier(g, StorageOptions::parse("hybrid:1"));
  EXPECT_NE(h.summary().find("storage=hybrid"), std::string::npos);
}

TEST(Storage, HybridResidencyFollowsDegreeThreshold) {
  // Star: hub 0 with 200 leaves. With tau=1 and no pin budget, the hub's
  // adjacency is the mapped tier's problem; resident bytes must be far
  // below the mmap-free in-memory cost. With a generous pin budget the hub
  // is pinned back and resident bytes grow by ~its adjacency.
  EdgeList edges;
  for (VertexId i = 1; i <= 200; ++i) edges.push_back({0, i});
  const Graph star = Graph::from_edges(201, std::move(edges));
  const std::size_t in_memory_bytes = star.memory_footprint().resident_bytes;

  StorageOptions unpinned = StorageOptions::parse("hybrid:1:0");
  const Graph spilled = io::with_tier(star, unpinned);
  const MemoryFootprint fp = spilled.memory_footprint();
  EXPECT_GT(fp.mapped_bytes, 0u);
  // Leaves: 200 slots of 20 bytes resident; the hub's 200 slots are not.
  EXPECT_LT(fp.resident_bytes, in_memory_bytes);
  expect_same_graph(star, spilled);

  StorageOptions pinned = StorageOptions::parse("hybrid:1:1048576");
  const Graph with_pin = io::with_tier(star, pinned);
  EXPECT_GT(with_pin.memory_footprint().resident_bytes, fp.resident_bytes);
  expect_same_graph(star, with_pin);
}

TEST(Storage, HybridPinBudgetIsDegreePure) {
  // Two degree classes above tau=1: degree-5 vertices and a degree-50 hub.
  // A budget that fits the hub but not the whole degree-5 class must pin
  // only the hub (whole classes or nothing keeps residency a pure function
  // of degree).
  GraphBuilder b;
  for (VertexId i = 1; i <= 50; ++i) b.add_edge(0, i);      // hub, deg 50
  for (VertexId c = 0; c < 10; ++c) {                       // deg-5 cores
    for (VertexId i = 0; i < 5; ++i) {
      b.add_edge(100 + c, 200 + 5 * c + i);
    }
  }
  const Graph g = b.build();
  const std::size_t hub_bytes = 50 * (sizeof(Neighbor) + sizeof(VertexId));

  StorageOptions o = StorageOptions::parse("hybrid:1");
  o.pinned_cache_bytes = hub_bytes + 16;  // hub fits, deg-5 class does not
  const Graph h = io::with_tier(g, o);
  expect_same_graph(g, h);

  StorageOptions none = o;
  none.pinned_cache_bytes = hub_bytes - 1;  // hub class no longer fits
  const Graph h2 = io::with_tier(g, none);
  EXPECT_LT(h2.memory_footprint().resident_bytes,
            h.memory_footprint().resident_bytes);
  expect_same_graph(g, h2);
}

TEST(Storage, CorruptedHeaderIsRejected) {
  const Graph g = gen::erdos_renyi(60, 150, 9);
  const fs::path path = temp_file("tlp_storage_corrupt.tlpc");

  const auto load_all_tiers = [&path]() {
    for (const char* spec : {"in_memory", "mmap", "hybrid:4"}) {
      (void)io::load_csr_file(path, StorageOptions::parse(spec));
    }
  };
  const auto corrupt_at = [&](std::uint64_t offset, unsigned char value) {
    io::write_csr_file(g, path);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char*>(&value), 1);
  };

  corrupt_at(0, 'X');  // magic
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  corrupt_at(4, 99);  // version
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  // The guard is 0x01020304 stored native-endian; on little-endian the byte
  // at offset 8 is already 0x04, so flip it to something else entirely.
  corrupt_at(8, 0x40);  // endianness guard
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  corrupt_at(16, 0xEE);  // num_vertices
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  corrupt_at(24, 0xEE);  // num_edges
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  corrupt_at(32, 0x01);  // offsets section offset
  EXPECT_THROW(load_all_tiers(), std::runtime_error);

  // Truncation: declared size no longer matches the actual size.
  io::write_csr_file(g, path);
  fs::resize_file(path, fs::file_size(path) - 64);
  EXPECT_THROW(load_all_tiers(), std::runtime_error);
  fs::resize_file(path, 10);  // shorter than the header itself
  EXPECT_THROW(load_all_tiers(), std::runtime_error);

  fs::remove(path);
}

TEST(Storage, CorruptedPayloadIsRejectedWhenVerifying) {
  const Graph g = gen::erdos_renyi(60, 150, 10);
  const fs::path path = temp_file("tlp_storage_payload.tlpc");
  io::write_csr_file(g, path);
  {
    // Flip a neighbor id inside the adjacency section.
    const auto layout = io::csr::layout_for(60, 150);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(layout.adjacency.offset +
                                        8 * sizeof(Neighbor)));
    const unsigned char junk = 0xFF;
    f.write(reinterpret_cast<const char*>(&junk), 1);
  }
  for (const char* spec : {"in_memory", "mmap", "hybrid:4"}) {
    EXPECT_THROW((void)io::load_csr_file(path, StorageOptions::parse(spec)),
                 std::runtime_error)
        << spec;
  }
  fs::remove(path);
}

TEST(Storage, WithTierSpillIsUnlinkedByDefault) {
  const fs::path dir = temp_file("tlp_spill_dir");
  fs::create_directories(dir);
  const Graph g = boundary_graph();

  StorageOptions o = StorageOptions::parse("mmap");
  o.spill_dir = dir;
  const Graph m = io::with_tier(g, o);
  EXPECT_TRUE(fs::is_empty(dir));  // unlinked while still mapped
  expect_same_graph(g, m);         // data stays readable after the unlink

  o.keep_spill = true;
  const Graph kept = io::with_tier(g, o);
  EXPECT_FALSE(fs::is_empty(dir));
  expect_same_graph(g, kept);
  fs::remove_all(dir);
}

TEST(Storage, WithTierInMemoryIsNoOp) {
  const Graph g = boundary_graph();
  const Graph same = io::with_tier(g, StorageOptions{});
  EXPECT_EQ(same.storage_tier(), StorageTier::kInMemory);
  expect_same_graph(g, same);
}

TEST(Storage, BuilderSetStorageProducesRequestedTier) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.set_storage(StorageOptions::parse("hybrid:1"));
  const Graph g = b.build();
  EXPECT_EQ(g.storage_tier(), StorageTier::kHybrid);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Storage, FromEdgesSortedAndShuffledInputsAgree) {
  // The sorted-input fast path (no per-vertex sort) must produce the same
  // adjacency as the general path; only edge ids differ with input order,
  // so compare via a fixed canonical ordering.
  const Graph sorted = Graph::from_edges(
      6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const Graph shuffled = Graph::from_edges(
      6, {{4, 5}, {2, 1}, {0, 2}, {3, 2}, {1, 0}, {3, 4}});
  ASSERT_EQ(sorted.num_edges(), shuffled.num_edges());
  for (VertexId v = 0; v < 6; ++v) {
    const auto a = sorted.neighbor_ids(v);
    const auto b = shuffled.neighbor_ids(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  // Duplicates must still be rejected on the fast path...
  EXPECT_THROW((void)Graph::from_edges(3, {{0, 1}, {0, 1}}),
               std::invalid_argument);
  // ...and on the slow path (same pair, detected after the per-vertex sort).
  EXPECT_THROW((void)Graph::from_edges(3, {{1, 0}, {0, 1}}),
               std::invalid_argument);
}

TEST(Storage, FootprintSplitsResidentAndMapped) {
  const Graph g = gen::erdos_renyi(500, 2000, 11);
  const fs::path path = temp_file("tlp_storage_footprint.tlpc");
  io::write_csr_file(g, path);
  const std::uintmax_t file_bytes = fs::file_size(path);

  const Graph m = io::load_csr_file(path, StorageOptions::parse("mmap"));
  EXPECT_EQ(m.memory_footprint().mapped_bytes, file_bytes);
  EXPECT_EQ(m.memory_footprint().resident_bytes, 0u);

  const Graph h = io::load_csr_file(path, StorageOptions::parse("hybrid:8"));
  EXPECT_EQ(h.memory_footprint().mapped_bytes, file_bytes);
  EXPECT_GT(h.memory_footprint().resident_bytes, 0u);
  EXPECT_EQ(h.memory_footprint().total_bytes(),
            file_bytes + h.memory_footprint().resident_bytes);

  const Graph i = io::load_csr_file(path, StorageOptions::parse("in_memory"));
  EXPECT_EQ(i.memory_footprint().mapped_bytes, 0u);
  EXPECT_GT(i.memory_footprint().resident_bytes, 0u);
  fs::remove(path);
}

TEST(Storage, GraphCopySharesStorage) {
  const Graph g = io::with_tier(boundary_graph(), StorageOptions::parse("mmap"));
  const Graph copy = g;  // shallow: same storage, same pointers
  EXPECT_EQ(copy.neighbors(0).data(), g.neighbors(0).data());
  expect_same_graph(g, copy);
}

}  // namespace
}  // namespace tlp
