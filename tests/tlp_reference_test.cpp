// Differential test: a deliberately naive, paper-literal TLP that rescans
// and rescores the whole frontier from scratch at every step (Algorithm 1
// as written, Eqs. 7/9 recomputed each time) must produce EXACTLY the same
// partition as the optimized incremental implementation. This pins the
// running-max μs1 cache, the bucketed μs2 selection, the residual
// bookkeeping, and every tie-break.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <random>
#include <vector>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "graph/graph.hpp"

namespace tlp {
namespace {

/// Brute-force TLP mirroring GrowthRun's semantics 1:1 (restart policy,
/// overshoot allowed, last round uncapped), but with O(frontier * degree)
/// recomputation per step and no caching at all.
class NaiveTlp {
 public:
  NaiveTlp(const Graph& g, const PartitionConfig& config)
      : g_(g),
        config_(config),
        assigned_(static_cast<std::size_t>(g.num_edges()), false),
        rdeg_(g.num_vertices()),
        member_round_(g.num_vertices(), kNoRound),
        seed_order_(g.num_vertices()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      rdeg_[v] = static_cast<std::uint32_t>(g.degree(v));
    }
    std::iota(seed_order_.begin(), seed_order_.end(), VertexId{0});
    std::mt19937_64 rng(config.seed);
    std::shuffle(seed_order_.begin(), seed_order_.end(), rng);
  }

  EdgePartition run() {
    EdgePartition partition(config_.num_partitions, g_.num_edges());
    EdgeId unassigned = g_.num_edges();
    const EdgeId capacity = config_.capacity(g_.num_edges());
    for (PartitionId k = 0; k < config_.num_partitions && unassigned > 0;
         ++k) {
      const bool last = (k + 1 == config_.num_partitions);
      const EdgeId cap =
          last ? std::numeric_limits<EdgeId>::max() : capacity;
      grow(k, cap, partition, unassigned);
    }
    return partition;
  }

 private:
  static constexpr std::uint32_t kNoRound =
      std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] bool member(VertexId v) const {
    return member_round_[v] == round_;
  }

  /// Candidate connection count: unassigned edges from v into the members.
  [[nodiscard]] std::uint32_t connections(VertexId v) const {
    std::uint32_t c = 0;
    for (const Neighbor& nb : g_.neighbors(v)) {
      if (!assigned_[static_cast<std::size_t>(nb.edge)] && member(nb.vertex)) {
        ++c;
      }
    }
    return c;
  }

  /// Frontier = all non-members with >= 1 residual edge into the members.
  [[nodiscard]] std::vector<VertexId> frontier() const {
    std::vector<VertexId> result;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      if (!member(v) && connections(v) > 0) result.push_back(v);
    }
    return result;
  }

  /// Eq. 7 from scratch: max over residual-member neighbors m of
  /// |N(v) ∩ N(m)| / |N(m)| on the static graph.
  [[nodiscard]] double mu_s1(VertexId v) const {
    double best = 0.0;
    for (const Neighbor& nb : g_.neighbors(v)) {
      if (assigned_[static_cast<std::size_t>(nb.edge)] || !member(nb.vertex)) {
        continue;
      }
      const std::size_t dm = g_.degree(nb.vertex);
      if (dm == 0) continue;
      best = std::max(best,
                      static_cast<double>(g_.common_neighbor_count(
                          v, nb.vertex)) /
                          static_cast<double>(dm));
    }
    return best;
  }

  VertexId select_stage1() const {
    VertexId best = kInvalidVertex;
    double best_score = -1.0;
    for (const VertexId v : frontier()) {
      const double score = mu_s1(v);
      if (score > best_score || (score == best_score && v < best)) {
        best = v;
        best_score = score;
      }
    }
    return best;
  }

  VertexId select_stage2() const {
    // Maximize M' = (e_in + c)/(e_out + r - 2c) with the same exact
    // arithmetic and tie-breaks as Frontier::select_stage2 (ties: larger c,
    // then smaller r, then smaller id).
    VertexId best = kInvalidVertex;
    unsigned __int128 bn = 0;
    unsigned __int128 bd = 1;
    std::uint32_t bc = 0;
    std::uint32_t br = 0;
    for (const VertexId v : frontier()) {
      const std::uint32_t c = connections(v);
      const std::uint32_t r = rdeg_[v];
      const unsigned __int128 num = e_in_ + c;
      const unsigned __int128 den = e_out_ + r - 2ULL * c;
      const auto better = [](unsigned __int128 a1, unsigned __int128 b1,
                             unsigned __int128 a2, unsigned __int128 b2) {
        if (b1 == 0 && b2 == 0) return a1 > a2;
        if (b1 == 0) return true;
        if (b2 == 0) return false;
        return a1 * b2 > a2 * b1;
      };
      const bool wins =
          best == kInvalidVertex || better(num, den, bn, bd) ||
          (!better(bn, bd, num, den) &&
           (c > bc || (c == bc && (r < br || (r == br && v < best)))));
      if (wins) {
        best = v;
        bn = num;
        bd = den;
        bc = c;
        br = r;
      }
    }
    return best;
  }

  void join(VertexId v, PartitionId k, EdgePartition& partition,
            EdgeId& unassigned) {
    member_round_[v] = round_;
    for (const Neighbor& nb : g_.neighbors(v)) {
      if (assigned_[static_cast<std::size_t>(nb.edge)]) continue;
      if (member(nb.vertex)) {
        assigned_[static_cast<std::size_t>(nb.edge)] = true;
        partition.assign(nb.edge, k);
        --rdeg_[v];
        --rdeg_[nb.vertex];
        --unassigned;
        ++e_in_;
        --e_out_;
      } else {
        ++e_out_;
      }
    }
  }

  VertexId next_seed() {
    while (seed_cursor_ < seed_order_.size()) {
      const VertexId v = seed_order_[seed_cursor_];
      if (rdeg_[v] > 0) return v;
      ++seed_cursor_;
    }
    return kInvalidVertex;
  }

  void grow(PartitionId k, EdgeId cap, EdgePartition& partition,
            EdgeId& unassigned) {
    round_ = k;
    e_in_ = 0;
    e_out_ = 0;
    while (e_in_ < cap && unassigned > 0) {
      const auto fr = frontier();
      VertexId v;
      if (fr.empty()) {
        v = next_seed();
        if (v == kInvalidVertex) break;
      } else {
        v = (e_in_ <= e_out_) ? select_stage1() : select_stage2();
      }
      join(v, k, partition, unassigned);
    }
  }

  const Graph& g_;
  const PartitionConfig& config_;
  std::vector<bool> assigned_;
  std::vector<std::uint32_t> rdeg_;
  std::vector<std::uint32_t> member_round_;
  std::uint32_t round_ = kNoRound;
  EdgeId e_in_ = 0;
  EdgeId e_out_ = 0;
  std::vector<VertexId> seed_order_;
  std::size_t seed_cursor_ = 0;
};

class TlpReference : public ::testing::TestWithParam<int> {};

TEST_P(TlpReference, OptimizedMatchesNaiveExactly) {
  const int variant = GetParam();
  Graph g;
  PartitionConfig config;
  config.seed = 1000 + variant;
  switch (variant % 6) {
    case 0:
      g = gen::erdos_renyi(60, 240, variant);
      config.num_partitions = 4;
      break;
    case 1:
      g = gen::barabasi_albert(80, 3, variant);
      config.num_partitions = 5;
      break;
    case 2:
      g = gen::sbm(72, 500, 6, 0.85, variant);
      config.num_partitions = 3;
      break;
    case 3:
      g = gen::caveman_graph(5, 8);
      config.num_partitions = 5;
      break;
    case 4:
      g = gen::chung_lu_power_law(90, 400, 2.1, variant);
      config.num_partitions = 6;
      break;
    default:
      g = gen::watts_strogatz(70, 4, 0.2, variant);
      config.num_partitions = 4;
      break;
  }

  const EdgePartition fast = TlpPartitioner{}.partition(g, config);
  const EdgePartition slow = NaiveTlp(g, config).run();
  ASSERT_EQ(fast.raw(), slow.raw())
      << "optimized TLP diverged from the paper-literal reference on "
      << g.summary() << " p=" << config.num_partitions;
}

INSTANTIATE_TEST_SUITE_P(Differential, TlpReference, ::testing::Range(0, 18));

}  // namespace
}  // namespace tlp
