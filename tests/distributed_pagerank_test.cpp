// Equivalence tests: the LocalGraph-based distributed PageRank must match
// the global-id GAS simulator and the sequential reference exactly.
#include <gtest/gtest.h>

#include "core/tlp.hpp"
#include "engine/distributed_pagerank.hpp"
#include "engine/pagerank.hpp"
#include "gen/generators.hpp"

namespace tlp::engine {
namespace {

EdgePartition tlp_partition(const Graph& g, PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return TlpPartitioner{}.partition(g, config);
}

TEST(DistributedPageRank, MatchesGlobalSimulatorExactly) {
  const Graph g = gen::barabasi_albert(300, 3, 111);
  const EdgePartition part = tlp_partition(g, 5);
  const std::size_t steps = 15;
  const auto global = pagerank(g, part, steps, 0.85, /*tolerance=*/0.0);
  const auto local = distributed_pagerank(g, part, steps, 0.85);
  ASSERT_EQ(local.ranks.size(), global.ranks.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(local.ranks[v], global.ranks[v], 1e-12) << "vertex " << v;
  }
}

TEST(DistributedPageRank, MessageCountsMatchGlobalSimulator) {
  const Graph g = gen::erdos_renyi(200, 900, 113);
  const EdgePartition part = tlp_partition(g, 4);
  const auto global = pagerank(g, part, 6, 0.85, /*tolerance=*/0.0);
  const auto local = distributed_pagerank(g, part, 6);
  EXPECT_EQ(local.comm.supersteps, global.comm.supersteps);
  EXPECT_EQ(local.comm.mirror_count, global.comm.mirror_count);
  EXPECT_EQ(local.comm.gather_messages, global.comm.gather_messages);
  EXPECT_EQ(local.comm.scatter_messages, global.comm.scatter_messages);
}

TEST(DistributedPageRank, PartitionInvariance) {
  const Graph g = gen::sbm(250, 1800, 5, 0.85, 115);
  const auto a = distributed_pagerank(g, tlp_partition(g, 3), 12);
  const auto b = distributed_pagerank(g, tlp_partition(g, 7), 12);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(a.ranks[v], b.ranks[v], 1e-12);
  }
}

TEST(DistributedPageRank, IsolatedVerticesKeepTeleportMass) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  EdgePartition part(2, 1);
  part.assign(0, 0);
  const auto result = distributed_pagerank(g, part, 10);
  EXPECT_NEAR(result.ranks[2], 0.15 / 4.0, 1e-12);
  EXPECT_NEAR(result.ranks[3], 0.15 / 4.0, 1e-12);
}

TEST(DistributedPageRank, EmptyGraph) {
  const Graph g;
  const EdgePartition part(2, EdgeId{0});
  const auto result = distributed_pagerank(g, part, 3);
  EXPECT_TRUE(result.ranks.empty());
}

}  // namespace
}  // namespace tlp::engine
