// End-to-end tests for the TLP partitioner and the TLP_R variant.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(Tlp, NameReflectsVariant) {
  EXPECT_EQ(TlpPartitioner{}.name(), "tlp");
  EXPECT_EQ(make_tlp_r(0.3).name(), "tlp_r0.3");
  EXPECT_EQ(make_tlp_r(1.0).name(), "tlp_r1.0");
}

TEST(Tlp, CompleteAndInRangeOnVariousGraphs) {
  const TlpPartitioner tlp;
  for (const Graph& g :
       {gen::path_graph(30), gen::cycle_graph(24), gen::star_graph(40),
        gen::complete_graph(12), gen::grid_graph(6, 8),
        gen::caveman_graph(6, 5), gen::erdos_renyi(100, 300, 1),
        gen::barabasi_albert(150, 3, 2)}) {
    const auto config = config_for(4);
    const EdgePartition part = tlp.partition(g, config);
    const ValidationResult r = validate(g, part, config);
    EXPECT_TRUE(r.ok()) << g.summary();
  }
}

TEST(Tlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(300, 3, /*seed=*/9);
  const TlpPartitioner tlp;
  const EdgePartition a = tlp.partition(g, config_for(5, 7));
  const EdgePartition b = tlp.partition(g, config_for(5, 7));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(Tlp, SeedChangesResult) {
  const Graph g = gen::barabasi_albert(300, 3, /*seed=*/9);
  const TlpPartitioner tlp;
  const EdgePartition a = tlp.partition(g, config_for(5, 1));
  const EdgePartition b = tlp.partition(g, config_for(5, 2));
  EXPECT_NE(a.raw(), b.raw());
}

TEST(Tlp, SinglePartitionTakesEverything) {
  const Graph g = gen::erdos_renyi(50, 120, 3);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(1));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(part.partition_of(e), 0u);
  }
  EXPECT_DOUBLE_EQ(replication_factor(g, part), 1.0);
}

TEST(Tlp, MorePartitionsThanEdges) {
  const Graph g = gen::path_graph(4);  // 3 edges
  const TlpPartitioner tlp;
  const auto config = config_for(8);
  const EdgePartition part = tlp.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

TEST(Tlp, EmptyGraph) {
  const Graph g;
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(3));
  EXPECT_EQ(part.num_edges(), 0u);
}

TEST(Tlp, GraphWithIsolatedVertices) {
  const Graph g = Graph::from_edges(10, {{0, 1}, {1, 2}, {3, 4}});
  const TlpPartitioner tlp;
  const auto config = config_for(2);
  EXPECT_TRUE(validate(g, tlp.partition(g, config), config).ok());
}

TEST(Tlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(3);
  const TlpPartitioner tlp;
  EXPECT_THROW((void)tlp.partition(g, config_for(0)), std::invalid_argument);
}

TEST(Tlp, NearPerfectOnPlantedCommunities) {
  // 8 cliques of 8 joined by single bridges, p = 8: local growth should
  // recover the cliques almost exactly — RF close to 1.
  const Graph g = gen::caveman_graph(8, 8);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(8));
  EXPECT_LT(replication_factor(g, part), 1.35);
}

TEST(Tlp, BeatsHashSplitOnCommunities) {
  const Graph g = gen::sbm(800, 6400, 16, 0.9, /*seed=*/12);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(8));

  EdgePartition hash(8, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    hash.assign(e, static_cast<PartitionId>((e * 2654435761u) % 8));
  }
  EXPECT_LT(replication_factor(g, part), replication_factor(g, hash));
}

TEST(Tlp, BalanceStaysNearOneWithOvershoot) {
  const Graph g = gen::barabasi_albert(2000, 4, /*seed=*/5);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(10));
  // Overshoot is bounded by one vertex's connections per round.
  EXPECT_LT(balance_factor(part), 1.5);
}

TEST(Tlp, NoOvershootRespectsCapacityOutsideLastRound) {
  TlpOptions options;
  options.allow_overshoot = false;
  const TlpPartitioner tlp(options);
  const Graph g = gen::erdos_renyi(200, 1000, 4);
  const auto config = config_for(5);
  const EdgePartition part = tlp.partition(g, config);
  const auto counts = part.edge_counts();
  const EdgeId capacity = config.capacity(g.num_edges());
  // All rounds but the (uncapped) last must respect C exactly.
  EdgeId over = 0;
  for (const EdgeId c : counts) {
    if (c > capacity) ++over;
  }
  EXPECT_LE(over, 1u);
  EXPECT_TRUE(validate(g, part, config).ok());
}

TEST(TlpStats, StageOneSelectsHigherDegreeVertices) {
  // Table VI's headline property: avg degree in Stage I >> Stage II.
  const Graph g = gen::chung_lu_power_law(4000, 24000, 2.1, /*seed=*/13);
  const TlpPartitioner tlp;
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(10), stats);
  ASSERT_GT(stats.stage1_joins, 0u);
  ASSERT_GT(stats.stage2_joins, 0u);
  EXPECT_GT(stats.stage1_avg_degree(), stats.stage2_avg_degree());
}

TEST(TlpStats, RoundsAreRecorded) {
  const Graph g = gen::erdos_renyi(100, 400, 6);
  const TlpPartitioner tlp;
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  EXPECT_EQ(stats.rounds.size(), 4u);
  EdgeId total = 0;
  for (const RoundStats& r : stats.rounds) {
    total += r.edges;
    EXPECT_EQ(r.joins, r.stage1_joins + r.stage2_joins + r.restarts + 1);
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(TlpR, ZeroRatioIsPureStageTwo) {
  const Graph g = gen::erdos_renyi(200, 800, 8);
  const TlpPartitioner tlp = make_tlp_r(0.0);
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  EXPECT_EQ(stats.stage1_joins, 0u);
  EXPECT_GT(stats.stage2_joins, 0u);
}

TEST(TlpR, FullRatioIsPureStageOne) {
  const Graph g = gen::erdos_renyi(200, 800, 8);
  const TlpPartitioner tlp = make_tlp_r(1.0);
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  EXPECT_EQ(stats.stage2_joins, 0u);
  EXPECT_GT(stats.stage1_joins, 0u);
}

TEST(TlpR, MidRatioUsesBothStages) {
  const Graph g = gen::erdos_renyi(400, 1600, 8);
  const TlpPartitioner tlp = make_tlp_r(0.5);
  TlpStats stats;
  (void)tlp.partition_with_stats(g, config_for(4), stats);
  EXPECT_GT(stats.stage1_joins, 0u);
  EXPECT_GT(stats.stage2_joins, 0u);
}

TEST(TlpR, RejectsOutOfRangeRatio) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)make_tlp_r(1.5).partition(g, config_for(2)),
               std::invalid_argument);
  EXPECT_THROW((void)make_tlp_r(-0.1).partition(g, config_for(2)),
               std::invalid_argument);
}

TEST(TlpStrict, SpillsKeepResultComplete) {
  TlpOptions options;
  options.empty_frontier = EmptyFrontierPolicy::kStrict;
  const TlpPartitioner tlp(options);
  // Many small components force early frontier exhaustion under kStrict.
  EdgeList edges;
  for (VertexId i = 0; i < 40; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(80, std::move(edges));
  const auto config = config_for(4);
  TlpStats stats;
  const EdgePartition part = tlp.partition_with_stats(g, config, stats);
  EXPECT_TRUE(validate(g, part, config).ok());
  // 4 strict rounds claim one component each (1 edge per round << C=10),
  // so almost everything must have been spilled.
  EXPECT_GT(stats.spilled_edges, 30u);
}

TEST(TlpRestart, CoversDisconnectedGraphWithoutSpill) {
  const TlpPartitioner tlp;  // default restart policy
  EdgeList edges;
  for (VertexId i = 0; i < 40; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(80, std::move(edges));
  const auto config = config_for(4);
  TlpStats stats;
  const EdgePartition part = tlp.partition_with_stats(g, config, stats);
  EXPECT_TRUE(validate(g, part, config).ok());
  EXPECT_EQ(stats.spilled_edges, 0u);
  EXPECT_GT(stats.restarts, 0u);
  // Each round fills to capacity: perfect balance on this instance.
  EXPECT_DOUBLE_EQ(balance_factor(part), 1.0);
}

}  // namespace
}  // namespace tlp
