// End-to-end tests for the TLP partitioner and the TLP_R variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

TEST(Tlp, NameReflectsVariant) {
  EXPECT_EQ(TlpPartitioner{}.name(), "tlp");
  EXPECT_EQ(make_tlp_r(0.3).name(), "tlp_r0.3");
  EXPECT_EQ(make_tlp_r(1.0).name(), "tlp_r1");
}

TEST(Tlp, NameKeepsDistinctRatiosDistinct) {
  // %.1f used to collapse 0.25 into "tlp_r0.2"; the name must round-trip
  // enough precision that sweep tables never alias two variants.
  EXPECT_EQ(make_tlp_r(0.25).name(), "tlp_r0.25");
  EXPECT_EQ(make_tlp_r(0.2).name(), "tlp_r0.2");
  EXPECT_NE(make_tlp_r(0.25).name(), make_tlp_r(0.2).name());
}

TEST(Tlp, CompleteAndInRangeOnVariousGraphs) {
  const TlpPartitioner tlp;
  for (const Graph& g :
       {gen::path_graph(30), gen::cycle_graph(24), gen::star_graph(40),
        gen::complete_graph(12), gen::grid_graph(6, 8),
        gen::caveman_graph(6, 5), gen::erdos_renyi(100, 300, 1),
        gen::barabasi_albert(150, 3, 2)}) {
    const auto config = config_for(4);
    const EdgePartition part = tlp.partition(g, config);
    const ValidationResult r = validate(g, part, config);
    EXPECT_TRUE(r.ok()) << g.summary();
  }
}

TEST(Tlp, DeterministicForSeed) {
  const Graph g = gen::barabasi_albert(300, 3, /*seed=*/9);
  const TlpPartitioner tlp;
  const EdgePartition a = tlp.partition(g, config_for(5, 7));
  const EdgePartition b = tlp.partition(g, config_for(5, 7));
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(Tlp, SeedChangesResult) {
  const Graph g = gen::barabasi_albert(300, 3, /*seed=*/9);
  const TlpPartitioner tlp;
  const EdgePartition a = tlp.partition(g, config_for(5, 1));
  const EdgePartition b = tlp.partition(g, config_for(5, 2));
  EXPECT_NE(a.raw(), b.raw());
}

TEST(Tlp, SinglePartitionTakesEverything) {
  const Graph g = gen::erdos_renyi(50, 120, 3);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(1));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(part.partition_of(e), 0u);
  }
  EXPECT_DOUBLE_EQ(replication_factor(g, part), 1.0);
}

TEST(Tlp, MorePartitionsThanEdges) {
  const Graph g = gen::path_graph(4);  // 3 edges
  const TlpPartitioner tlp;
  const auto config = config_for(8);
  const EdgePartition part = tlp.partition(g, config);
  EXPECT_TRUE(validate(g, part, config).ok());
}

TEST(Tlp, EmptyGraph) {
  const Graph g;
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(3));
  EXPECT_EQ(part.num_edges(), 0u);
}

TEST(Tlp, GraphWithIsolatedVertices) {
  const Graph g = Graph::from_edges(10, {{0, 1}, {1, 2}, {3, 4}});
  const TlpPartitioner tlp;
  const auto config = config_for(2);
  EXPECT_TRUE(validate(g, tlp.partition(g, config), config).ok());
}

TEST(Tlp, RejectsZeroPartitions) {
  const Graph g = gen::path_graph(3);
  const TlpPartitioner tlp;
  EXPECT_THROW((void)tlp.partition(g, config_for(0)), std::invalid_argument);
}

TEST(Tlp, NearPerfectOnPlantedCommunities) {
  // 8 cliques of 8 joined by single bridges, p = 8: local growth should
  // recover the cliques almost exactly — RF close to 1.
  const Graph g = gen::caveman_graph(8, 8);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(8));
  EXPECT_LT(replication_factor(g, part), 1.35);
}

TEST(Tlp, BeatsHashSplitOnCommunities) {
  const Graph g = gen::sbm(800, 6400, 16, 0.9, /*seed=*/12);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(8));

  EdgePartition hash(8, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    hash.assign(e, static_cast<PartitionId>((e * 2654435761u) % 8));
  }
  EXPECT_LT(replication_factor(g, part), replication_factor(g, hash));
}

TEST(Tlp, BalanceStaysNearOneWithOvershoot) {
  const Graph g = gen::barabasi_albert(2000, 4, /*seed=*/5);
  const TlpPartitioner tlp;
  const EdgePartition part = tlp.partition(g, config_for(10));
  // Overshoot is bounded by one vertex's connections per round.
  EXPECT_LT(balance_factor(part), 1.5);
}

TEST(Tlp, NoOvershootRespectsCapacityOutsideLastRound) {
  TlpOptions options;
  options.allow_overshoot = false;
  const TlpPartitioner tlp(options);
  const Graph g = gen::erdos_renyi(200, 1000, 4);
  const auto config = config_for(5);
  const EdgePartition part = tlp.partition(g, config);
  const auto counts = part.edge_counts();
  const EdgeId capacity = config.capacity(g.num_edges());
  // All rounds but the (uncapped) last must respect C exactly.
  EdgeId over = 0;
  for (const EdgeId c : counts) {
    if (c > capacity) ++over;
  }
  EXPECT_LE(over, 1u);
  EXPECT_TRUE(validate(g, part, config).ok());
}

TEST(TlpTelemetry, StageOneSelectsHigherDegreeVertices) {
  // Table VI's headline property: avg degree in Stage I >> Stage II.
  const Graph g = gen::chung_lu_power_law(4000, 24000, 2.1, /*seed=*/13);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(10), ctx);
  const Telemetry& t = ctx.telemetry();
  ASSERT_GT(t.counter("stage1_joins"), 0.0);
  ASSERT_GT(t.counter("stage2_joins"), 0.0);
  const double s1_avg = t.counter("stage1_degree_sum") / t.counter("stage1_joins");
  const double s2_avg = t.counter("stage2_degree_sum") / t.counter("stage2_joins");
  EXPECT_GT(s1_avg, s2_avg);
}

TEST(TlpTelemetry, RoundsAreRecorded) {
  const Graph g = gen::erdos_renyi(100, 400, 6);
  const TlpPartitioner tlp;
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  const Telemetry& t = ctx.telemetry();
  const auto* joins = t.series("round_joins");
  const auto* s1 = t.series("round_stage1_joins");
  const auto* s2 = t.series("round_stage2_joins");
  const auto* restarts = t.series("round_restarts");
  const auto* edges = t.series("round_edges");
  ASSERT_NE(joins, nullptr);
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(joins->size(), 4u);
  double total = 0.0;
  for (std::size_t i = 0; i < joins->size(); ++i) {
    total += (*edges)[i];
    // Every join is a stage-I pick, a stage-II pick, a restart reseed, or
    // the round's initial seed.
    EXPECT_EQ((*joins)[i], (*s1)[i] + (*s2)[i] + (*restarts)[i] + 1.0);
  }
  EXPECT_EQ(total, static_cast<double>(g.num_edges()));
}

TEST(TlpR, ZeroRatioIsPureStageTwo) {
  const Graph g = gen::erdos_renyi(200, 800, 8);
  const TlpPartitioner tlp = make_tlp_r(0.0);
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  EXPECT_EQ(ctx.telemetry().counter("stage1_joins"), 0.0);
  EXPECT_GT(ctx.telemetry().counter("stage2_joins"), 0.0);
}

TEST(TlpR, FullRatioIsPureStageOne) {
  const Graph g = gen::erdos_renyi(200, 800, 8);
  const TlpPartitioner tlp = make_tlp_r(1.0);
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  EXPECT_EQ(ctx.telemetry().counter("stage2_joins"), 0.0);
  EXPECT_GT(ctx.telemetry().counter("stage1_joins"), 0.0);
}

TEST(TlpR, MidRatioUsesBothStages) {
  const Graph g = gen::erdos_renyi(400, 1600, 8);
  const TlpPartitioner tlp = make_tlp_r(0.5);
  RunContext ctx;
  (void)tlp.partition(g, config_for(4), ctx);
  EXPECT_GT(ctx.telemetry().counter("stage1_joins"), 0.0);
  EXPECT_GT(ctx.telemetry().counter("stage2_joins"), 0.0);
}

TEST(TlpR, RejectsOutOfRangeRatio) {
  const Graph g = gen::path_graph(4);
  EXPECT_THROW((void)make_tlp_r(1.5).partition(g, config_for(2)),
               std::invalid_argument);
  EXPECT_THROW((void)make_tlp_r(-0.1).partition(g, config_for(2)),
               std::invalid_argument);
}

TEST(TlpStrict, SpillsKeepResultComplete) {
  TlpOptions options;
  options.empty_frontier = EmptyFrontierPolicy::kStrict;
  const TlpPartitioner tlp(options);
  // Many small components force early frontier exhaustion under kStrict.
  EdgeList edges;
  for (VertexId i = 0; i < 40; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(80, std::move(edges));
  const auto config = config_for(4);
  RunContext ctx;
  const EdgePartition part = tlp.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  // 4 strict rounds claim one component each (1 edge per round << C=10),
  // so almost everything must have been spilled.
  EXPECT_GT(ctx.telemetry().counter("spilled_edges"), 30.0);
  // Every round ended through the paper-literal strict branch.
  EXPECT_EQ(ctx.telemetry().counter("strict_round_ends"), 4.0);
  // The spilled edges must still land spread over the lightest partitions.
  EXPECT_LE(balance_factor(part), 1.2);
}

TEST(TlpStrict, SpillTargetsLightestPartitions) {
  // One big clique plus isolated edges: round 1 eats the clique, strict
  // rounds 2..4 take one isolated edge each, and the spill path must then
  // top up partitions 2..4 (the light ones), never partition 1.
  EdgeList edges;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) edges.push_back(Edge{u, v});
  }
  for (VertexId i = 0; i < 20; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(8 + 2 * i),
                         static_cast<VertexId>(9 + 2 * i)});
  }
  TlpOptions options;
  options.empty_frontier = EmptyFrontierPolicy::kStrict;
  const TlpPartitioner tlp(options);
  const Graph g = Graph::from_edges(48, std::move(edges));
  const auto config = config_for(4);
  RunContext ctx;
  const EdgePartition part = tlp.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  EXPECT_GT(ctx.telemetry().counter("spilled_edges"), 0.0);
  const auto counts = part.edge_counts();
  const EdgeId heaviest = *std::max_element(counts.begin(), counts.end());
  const EdgeId lightest = *std::min_element(counts.begin(), counts.end());
  // Spill balances the tail: no partition may end up more than one edge
  // lighter than another once spilling has run.
  EXPECT_LE(heaviest - lightest, config.capacity(g.num_edges()));
}

TEST(TlpNoOvershoot, RoundCloseIsCounted) {
  TlpOptions options;
  options.allow_overshoot = false;
  const TlpPartitioner tlp(options);
  // A clique has high-connection frontier vertices, so some round must hit
  // the "joining v would blow the capacity" close at least once.
  const Graph g = gen::complete_graph(20);
  const auto config = config_for(6);
  RunContext ctx;
  const EdgePartition part = tlp.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  EXPECT_GT(ctx.telemetry().counter("capacity_closes"), 0.0);
  // Closed rounds stay within capacity (only the uncapped last round may
  // exceed it).
  const auto counts = part.edge_counts();
  const EdgeId capacity = config.capacity(g.num_edges());
  EdgeId over = 0;
  for (const EdgeId c : counts) {
    if (c > capacity) ++over;
  }
  EXPECT_LE(over, 1u);
}

TEST(TlpRestart, CoversDisconnectedGraphWithoutSpill) {
  const TlpPartitioner tlp;  // default restart policy
  EdgeList edges;
  for (VertexId i = 0; i < 40; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(2 * i),
                         static_cast<VertexId>(2 * i + 1)});
  }
  const Graph g = Graph::from_edges(80, std::move(edges));
  const auto config = config_for(4);
  RunContext ctx;
  const EdgePartition part = tlp.partition(g, config, ctx);
  EXPECT_TRUE(validate(g, part, config).ok());
  EXPECT_EQ(ctx.telemetry().counter("spilled_edges"), 0.0);
  EXPECT_GT(ctx.telemetry().counter("restarts"), 0.0);
  // Each round fills to capacity: perfect balance on this instance.
  EXPECT_DOUBLE_EQ(balance_factor(part), 1.0);
}

}  // namespace
}  // namespace tlp
