// Differential tests for the intersect kernel layer: every vector kernel
// must return EXACTLY what the scalar reference returns — integer counts
// and bit-identical Stage-I score terms — on adversarial shapes (lane
// remainders, gallop-boundary skews, empty/disjoint/identical lists) and
// under randomized fuzz. Also pins the contract that makes the cost model
// honest: Graph::intersection_cost branches on the same predicate count()
// dispatches on.

#include "graph/intersect_kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace tlp {
namespace {

using intersect::Kernel;

/// Restores the process-default kernel when a test exits (set_active is
/// process-global state).
class KernelGuard {
 public:
  KernelGuard() : saved_(intersect::active_kind()) {}
  ~KernelGuard() { intersect::set_active(saved_); }

 private:
  Kernel saved_;
};

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> kernels;
  for (const Kernel k : {Kernel::kScalar, Kernel::kSse42, Kernel::kAvx2}) {
    if (intersect::supported(k)) kernels.push_back(k);
  }
  return kernels;
}

/// Brute-force oracle, structurally unrelated to any kernel.
std::size_t oracle_count(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  std::size_t c = 0;
  for (const VertexId x : a) {
    if (std::binary_search(b.begin(), b.end(), x)) ++c;
  }
  return c;
}

/// Sorted duplicate-free list of `n` values drawn from [0, universe).
std::vector<VertexId> random_sorted_list(std::mt19937_64& rng, std::size_t n,
                                         VertexId universe) {
  std::uniform_int_distribution<VertexId> dist(0, universe - 1);
  std::vector<VertexId> v;
  v.reserve(n);
  while (v.size() < n) v.push_back(dist(rng));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void expect_all_kernels_agree(const std::vector<VertexId>& a,
                              const std::vector<VertexId>& b) {
  const std::size_t expected = oracle_count(a, b);
  for (const Kernel k : supported_kernels()) {
    ASSERT_TRUE(intersect::set_active(k));
    EXPECT_EQ(intersect::count(a.data(), a.size(), b.data(), b.size()),
              expected)
        << "kernel=" << intersect::kernel_name(k) << " |a|=" << a.size()
        << " |b|=" << b.size();
    // Symmetric call exercises the internal swap.
    EXPECT_EQ(intersect::count(b.data(), b.size(), a.data(), a.size()),
              expected)
        << "kernel=" << intersect::kernel_name(k) << " (swapped)";
  }
}

TEST(IntersectKernels, ScalarAlwaysSupported) {
  EXPECT_TRUE(intersect::supported(Kernel::kScalar));
  EXPECT_TRUE(intersect::set_active(Kernel::kScalar));
  EXPECT_EQ(intersect::active_kind(), Kernel::kScalar);
  KernelGuard guard;  // restore whatever the suite default is
}

TEST(IntersectKernels, NamesRoundTrip) {
  for (const Kernel k : {Kernel::kScalar, Kernel::kSse42, Kernel::kAvx2}) {
    Kernel parsed{};
    ASSERT_TRUE(intersect::kernel_from_name(intersect::kernel_name(k),
                                            parsed));
    EXPECT_EQ(parsed, k);
  }
  Kernel out{};
  EXPECT_FALSE(intersect::kernel_from_name("avx512", out));
  EXPECT_FALSE(intersect::kernel_from_name("", out));
}

TEST(IntersectKernels, SetActiveRejectsUnsupported) {
  KernelGuard guard;
  const Kernel before = intersect::active_kind();
  for (const Kernel k : {Kernel::kSse42, Kernel::kAvx2}) {
    if (!intersect::supported(k)) {
      EXPECT_FALSE(intersect::set_active(k));
      EXPECT_EQ(intersect::active_kind(), before) << "table must not change";
    }
  }
}

TEST(IntersectKernels, EmptyAndTrivialLists) {
  KernelGuard guard;
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one{7};
  const std::vector<VertexId> some{1, 5, 9, 12, 40};
  expect_all_kernels_agree(empty, empty);
  expect_all_kernels_agree(empty, some);
  expect_all_kernels_agree(one, some);
  expect_all_kernels_agree(one, one);
}

TEST(IntersectKernels, DisjointAndIdenticalAcrossLaneRemainders) {
  KernelGuard guard;
  // Lengths 0..65 cross every remainder of the 4-lane and 8-lane blocks
  // (and the 64 -> 65 boundary of two full AVX2 sweeps plus a tail of 1).
  for (std::size_t n = 0; n <= 65; ++n) {
    std::vector<VertexId> evens;
    std::vector<VertexId> odds;
    std::vector<VertexId> same;
    for (std::size_t i = 0; i < n; ++i) {
      evens.push_back(static_cast<VertexId>(2 * i));
      odds.push_back(static_cast<VertexId>(2 * i + 1));
      same.push_back(static_cast<VertexId>(3 * i));
    }
    expect_all_kernels_agree(evens, odds);  // fully disjoint, interleaved
    expect_all_kernels_agree(same, same);   // fully overlapping
  }
}

TEST(IntersectKernels, MismatchedLengthsEveryPairUpTo17) {
  KernelGuard guard;
  std::mt19937_64 rng(7);
  for (std::size_t na = 0; na <= 17; ++na) {
    for (std::size_t nb = 0; nb <= 17; ++nb) {
      const auto a = random_sorted_list(rng, na + 1, 64);
      const auto b = random_sorted_list(rng, nb + 1, 64);
      expect_all_kernels_agree(a, b);
    }
  }
}

TEST(IntersectKernels, GallopBoundarySkews) {
  KernelGuard guard;
  std::mt19937_64 rng(11);
  // Skews straddling kGallopSkew (16): 15x stays on the merge path, 16x
  // and 17x take the gallop path. Both paths of every kernel must agree
  // with the oracle right at the dispatch boundary.
  for (const std::size_t na : {1, 3, 5, 8}) {
    for (const std::size_t skew : {15, 16, 17}) {
      const std::size_t nb = na * skew;
      ASSERT_EQ(intersect::chooses_gallop(na, nb),
                skew >= intersect::kGallopSkew);
      const auto a = random_sorted_list(
          rng, na + 1, static_cast<VertexId>(4 * nb + 4));
      const auto b = random_sorted_list(
          rng, nb + 1, static_cast<VertexId>(4 * nb + 4));
      expect_all_kernels_agree(a, b);
    }
  }
}

TEST(IntersectKernels, ExtremeValuesNearVertexIdMax) {
  KernelGuard guard;
  // The vectorized gallop window compares with a sign-flip; values with
  // the high bit set are where that goes wrong if mishandled.
  const VertexId top = std::numeric_limits<VertexId>::max();
  std::vector<VertexId> a{0, top - 8, top - 2, top};
  std::vector<VertexId> b;
  for (VertexId i = 0; i < 128; ++i) b.push_back(top - 2 * i);
  std::sort(b.begin(), b.end());
  expect_all_kernels_agree(a, b);
}

TEST(IntersectKernels, RandomizedDifferentialFuzz) {
  KernelGuard guard;
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::size_t> len(0, 300);
  std::uniform_int_distribution<int> universe_pick(0, 2);
  for (int iter = 0; iter < 400; ++iter) {
    // Three density regimes: dense overlap, moderate, sparse.
    const VertexId universe =
        universe_pick(rng) == 0 ? 64 : (universe_pick(rng) == 1 ? 1024 : 65536);
    const auto a = random_sorted_list(rng, len(rng) + 1, universe);
    const auto b = random_sorted_list(rng, len(rng) + 1, universe);
    expect_all_kernels_agree(a, b);
  }
}

TEST(IntersectKernels, Stage1TermsMatchScalarBitForBit) {
  KernelGuard guard;
  std::mt19937_64 rng(33);
  std::uniform_int_distribution<std::uint32_t> count_dist(0, 5000);
  const std::size_t table_size = 4096;
  std::vector<std::uint32_t> counts(table_size);
  for (auto& c : counts) c = count_dist(rng);

  std::uniform_int_distribution<VertexId> id_dist(
      0, static_cast<VertexId>(table_size - 1));
  for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64,
                              65, 200}) {
    std::vector<VertexId> ids(n);
    for (auto& id : ids) id = id_dist(rng);
    for (const double divisor : {1.0, 3.0, 7.0, 1000.0, 12345.0}) {
      // Scalar reference terms.
      std::vector<double> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = static_cast<double>(counts[ids[i]]) / divisor;
      }
      for (const Kernel k : supported_kernels()) {
        ASSERT_TRUE(intersect::set_active(k));
        std::vector<double> out(n, -1.0);
        intersect::active().stage1_terms(counts.data(), ids.data(), n,
                                         divisor, out.data());
        for (std::size_t i = 0; i < n; ++i) {
          // Exact equality is the contract: correctly-rounded IEEE divide
          // in every kernel, never a reciprocal multiply.
          EXPECT_EQ(out[i], expected[i])
              << "kernel=" << intersect::kernel_name(k) << " i=" << i
              << " n=" << n << " divisor=" << divisor;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cost-model agreement (the Graph::intersection_cost contract).

TEST(IntersectionCostModel, BranchesExactlyWhereTheKernelDispatches) {
  KernelGuard guard;
  ASSERT_TRUE(intersect::set_active(Kernel::kScalar));
  for (std::size_t small = 1; small <= 20; ++small) {
    for (std::size_t skew = 14; skew <= 18; ++skew) {
      const std::size_t big = small * skew;
      const bool gallop = intersect::chooses_gallop(small, big);
      EXPECT_EQ(gallop, big >= Graph::kGallopSkew * small);
      // The scalar-kernel merge cost is small + big; the gallop cost is
      // small * (bit_width(big/small) + 2). intersection_cost must produce
      // the formula of the branch chooses_gallop picks — this is the
      // regression pin that model and execution can never diverge.
      const std::size_t cost = Graph::intersection_cost(small, big);
      std::size_t expect = small + big;
      if (gallop) {
        std::size_t log2 = 0;
        for (std::size_t r = big / small; r > 0; r >>= 1) ++log2;
        expect = small * (log2 + 2);
      }
      EXPECT_EQ(cost, expect) << "small=" << small << " big=" << big;
    }
  }
}

TEST(IntersectionCostModel, QuantizesMergeCostToActiveLaneWidth) {
  KernelGuard guard;
  for (const Kernel k : supported_kernels()) {
    ASSERT_TRUE(intersect::set_active(k));
    const std::size_t lanes = intersect::active().lane_width;
    const std::size_t cost = Graph::intersection_cost(10, 30);
    if (lanes <= 1) {
      EXPECT_EQ(cost, 40u);
    } else {
      EXPECT_EQ(cost, 2 * ((40 + lanes - 1) / lanes))
          << "kernel=" << intersect::kernel_name(k);
    }
    // Degenerate degrees keep their floor cost regardless of kernel.
    EXPECT_EQ(Graph::intersection_cost(0, 100), 1u);
    EXPECT_EQ(Graph::intersection_cost(100, 0), 1u);
  }
}

}  // namespace
}  // namespace tlp
