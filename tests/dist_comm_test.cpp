// Unit tests for the in-process message-passing layer behind multi_tlp's
// sharded claim protocol: Mailbox delivery order, CommFabric routing and
// deterministic fault injection, AllReduce associativity, and the
// shard-side claim resolution rule. The thread-safety claims (sender-serial
// lanes, concurrent distinct senders) are exercised under the pool so the
// TSan leg of tools/check.sh can falsify them.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "dist/all_reduce.hpp"
#include "dist/claim_protocol.hpp"
#include "dist/comm_fabric.hpp"
#include "dist/fault_plan.hpp"
#include "dist/mailbox.hpp"
#include "util/thread_pool.hpp"

namespace tlp::dist {
namespace {

TEST(Mailbox, FifoPerSenderAscendingSenderSweep) {
  Mailbox<int> box(3);
  box.post(2, 20);
  box.post(0, 1);
  box.post(2, 21);
  box.post(1, 10);
  box.post(0, 2);
  std::vector<std::pair<std::size_t, int>> seen;
  box.for_each([&](std::size_t sender, int m) { seen.emplace_back(sender, m); });
  const std::vector<std::pair<std::size_t, int>> expected{
      {0, 1}, {0, 2}, {1, 10}, {2, 20}, {2, 21}};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(box.size(), 5u);
  EXPECT_FALSE(box.empty());
}

TEST(Mailbox, ClearEmptiesEveryLane) {
  Mailbox<std::string> box(2);
  box.post(0, "a");
  box.post(1, "b");
  box.clear();
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.size(), 0u);
  EXPECT_TRUE(box.lane(0).empty());
  // Reusable after clear.
  box.post(1, "c");
  EXPECT_EQ(box.lane(1), std::vector<std::string>{"c"});
}

TEST(CommFabric, RoutesToAddressedRankAndCountsMessages) {
  CommFabric<int> fabric(3, 2);
  fabric.send(0, 2, 7);
  fabric.send(1, 2, 8);
  fabric.send(0, 0, 9);
  EXPECT_EQ(fabric.messages_sent(), 3u);
  EXPECT_TRUE(fabric.inbox(1).empty());
  std::vector<int> got;
  fabric.collect(2, got);
  EXPECT_EQ(got, (std::vector<int>{7, 8}));  // ascending sender
  fabric.collect(0, got);
  EXPECT_EQ(got, (std::vector<int>{9}));
  fabric.clear_all_inboxes();
  EXPECT_TRUE(fabric.inbox(2).empty());
}

TEST(CommFabric, ConcurrentDistinctSendersMatchSerialDelivery) {
  // The contract TSan checks: distinct senders post concurrently without
  // locks, and after the pool barrier the drain order is the same as if
  // the sends had run serially.
  constexpr std::size_t kSenders = 8;
  constexpr std::size_t kRanks = 3;
  constexpr int kPerSender = 200;
  CommFabric<int> parallel_fabric(kRanks, kSenders);
  CommFabric<int> serial_fabric(kRanks, kSenders);
  ThreadPool pool(4);
  pool.run_indexed(kSenders, [&](std::size_t sender) {
    for (int i = 0; i < kPerSender; ++i) {
      parallel_fabric.send(sender, (sender + i) % kRanks,
                           static_cast<int>(sender) * 1000 + i);
    }
  });
  for (std::size_t sender = 0; sender < kSenders; ++sender) {
    for (int i = 0; i < kPerSender; ++i) {
      serial_fabric.send(sender, (sender + i) % kRanks,
                         static_cast<int>(sender) * 1000 + i);
    }
  }
  EXPECT_EQ(parallel_fabric.messages_sent(), serial_fabric.messages_sent());
  for (std::size_t r = 0; r < kRanks; ++r) {
    std::vector<int> a;
    std::vector<int> b;
    parallel_fabric.collect(r, a);
    serial_fabric.collect(r, b);
    EXPECT_EQ(a, b) << "rank " << r;
  }
}

TEST(CommFabric, FaultPlanIsDeterministicAcrossFabrics) {
  // Same plan + same send sequence => byte-identical delivery, including
  // which messages were dropped, duplicated and how lanes were permuted.
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_permille = 250;
  plan.dup_permille = 250;
  plan.reorder = true;
  auto drive = [&plan](CommFabric<int>& fabric) {
    fabric.set_fault_plan(plan);
    for (std::size_t sender = 0; sender < 4; ++sender) {
      for (int i = 0; i < 100; ++i) {
        fabric.send(sender, (sender + i) % 2, static_cast<int>(sender) * 256 + i);
      }
    }
    std::vector<int> out0;
    std::vector<int> out1;
    fabric.collect(0, out0);
    fabric.collect(1, out1);
    out0.insert(out0.end(), out1.begin(), out1.end());
    return std::pair{out0, fabric.messages_sent()};
  };
  CommFabric<int> a(2, 4);
  CommFabric<int> b(2, 4);
  EXPECT_EQ(drive(a), drive(b));
}

TEST(CommFabric, DropAllLosesEveryMessageButStillCountsThem) {
  FaultPlan plan;
  plan.drop_permille = 1000;
  CommFabric<int> fabric(2, 2);
  fabric.set_fault_plan(plan);
  for (int i = 0; i < 50; ++i) fabric.send(0, i % 2, i);
  EXPECT_EQ(fabric.messages_sent(), 50u);
  EXPECT_TRUE(fabric.inbox(0).empty());
  EXPECT_TRUE(fabric.inbox(1).empty());
}

TEST(CommFabric, DuplicatesOnlyRepeatMessagesNeverInventThem) {
  FaultPlan plan;
  plan.seed = 3;
  plan.dup_permille = 500;
  CommFabric<int> fabric(1, 1);
  fabric.set_fault_plan(plan);
  for (int i = 0; i < 100; ++i) fabric.send(0, 0, i);
  std::vector<int> got;
  fabric.collect(0, got);
  EXPECT_GT(got.size(), 100u);  // 500/1000 dup rate; zero dups over 100
                                // sends would mean the roll stream is broken
  // Every delivered value was sent, each at most twice, FIFO order kept
  // (a duplicate is delivered adjacent to its original).
  int last = -1;
  std::size_t run = 0;
  for (const int v : got) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 100);
    if (v == last) {
      ++run;
      ASSERT_LE(run, 2u) << "value delivered more than twice: " << v;
    } else {
      ASSERT_GT(v, last) << "FIFO order broken";
      last = v;
      run = 1;
    }
  }
}

TEST(AllReduce, TreeEqualsLinearForOrderedConcatenation) {
  // Ordered concatenation is associative but NOT commutative — exactly the
  // op multi_tlp reduces with. Tree == linear on every input IS the
  // associativity contract.
  const auto concat = [](std::vector<int> a, const std::vector<int>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };
  for (const std::size_t ranks : {1u, 2u, 3u, 5u, 8u}) {
    AllReduce<int> ar(ranks);
    std::vector<int> expected;
    for (std::size_t r = 0; r < ranks; ++r) {
      std::vector<int> contribution;
      for (std::size_t i = 0; i <= r; ++i) {
        contribution.push_back(static_cast<int>(r * 10 + i));
      }
      expected.insert(expected.end(), contribution.begin(), contribution.end());
      ar.contribute(r, std::move(contribution));
    }
    EXPECT_EQ(ar.reduce(concat), ar.reduce_linear(concat)) << ranks;
    EXPECT_EQ(ar.reduce(concat), expected) << ranks;
  }
}

TEST(AllReduce, EmptyContributionsAreIdentityElements) {
  const auto concat = [](std::vector<int> a, const std::vector<int>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };
  AllReduce<int> ar(4);
  ar.contribute(0, {});
  ar.contribute(1, {1, 2});
  ar.contribute(2, {});
  ar.contribute(3, {3});
  EXPECT_EQ(ar.reduce(concat), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ar.reduce(concat), ar.reduce_linear(concat));
  // All-empty round (every shard idle) reduces to the identity.
  ar.reset();
  for (std::size_t r = 0; r < 4; ++r) ar.contribute(r, {});
  EXPECT_TRUE(ar.reduce(concat).empty());
}

TEST(AllReduce, ResetForgetsContributionsAndAllowsReuse) {
  const auto sum = [](std::vector<int> a, const std::vector<int>& b) {
    for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
    return a;
  };
  AllReduce<int> ar(2);
  ar.contribute(0, {1, 2});
  ar.contribute(1, {10, 20});
  EXPECT_EQ(ar.reduce(sum), (std::vector<int>{11, 22}));
  ar.reset();
  ar.contribute(0, {5, 5});
  ar.contribute(1, {1, 1});
  EXPECT_EQ(ar.reduce(sum), (std::vector<int>{6, 6}));
}

TEST(DistClaim, LowestRequestingPartitionWins) {
  std::vector<ClaimRequest> requests{{5, 3}, {5, 1}, {5, 2}, {9, 4}};
  std::vector<ClaimWin> wins;
  resolve_shard_claims(requests, [](EdgeId) { return false; }, wins);
  EXPECT_EQ(wins, (std::vector<ClaimWin>{{5, 1}, {9, 4}}));
}

TEST(DistClaim, DuplicatedRequestsAreIdempotent) {
  std::vector<ClaimRequest> once{{4, 2}, {4, 1}, {7, 3}};
  std::vector<ClaimRequest> doubled{{4, 2}, {4, 2}, {4, 1}, {7, 3},
                                    {4, 1}, {7, 3}, {7, 3}};
  std::vector<ClaimWin> a;
  std::vector<ClaimWin> b;
  resolve_shard_claims(once, [](EdgeId) { return false; }, a);
  resolve_shard_claims(doubled, [](EdgeId) { return false; }, b);
  EXPECT_EQ(a, b);
}

TEST(DistClaim, DeliveryOrderIsIrrelevant) {
  std::vector<ClaimRequest> forward{{1, 1}, {2, 2}, {3, 3}, {1, 0}, {3, 1}};
  std::vector<ClaimRequest> reversed(forward.rbegin(), forward.rend());
  std::vector<ClaimWin> a;
  std::vector<ClaimWin> b;
  resolve_shard_claims(forward, [](EdgeId) { return false; }, a);
  resolve_shard_claims(reversed, [](EdgeId) { return false; }, b);
  EXPECT_EQ(a, b);
}

TEST(DistClaim, AssignedEdgesAreStaleAndWinNothing) {
  std::vector<ClaimRequest> requests{{2, 0}, {3, 1}, {4, 2}};
  std::vector<ClaimWin> wins;
  resolve_shard_claims(requests, [](EdgeId e) { return e == 3; }, wins);
  EXPECT_EQ(wins, (std::vector<ClaimWin>{{2, 0}, {4, 2}}));
}

TEST(DistClaim, EmptyRequestBatchYieldsNoWins) {
  std::vector<ClaimRequest> requests;
  std::vector<ClaimWin> wins{{1, 1}};  // must be cleared
  resolve_shard_claims(requests, [](EdgeId) { return false; }, wins);
  EXPECT_TRUE(wins.empty());
}

}  // namespace
}  // namespace tlp::dist
