// Tests for the vertex-cut GAS engine simulator: placement, PageRank,
// connected components, and communication accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/baselines.hpp"
#include "core/tlp.hpp"
#include "engine/connected_components.hpp"
#include "engine/pagerank.hpp"
#include "engine/placement.hpp"
#include "gen/generators.hpp"
#include "graph/algorithms.hpp"
#include "partition/metrics.hpp"

namespace tlp::engine {
namespace {

PartitionConfig config_for(PartitionId p, std::uint64_t seed = 42) {
  PartitionConfig config;
  config.num_partitions = p;
  config.seed = seed;
  return config;
}

EdgePartition round_robin(const Graph& g, PartitionId p) {
  EdgePartition part(p, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    part.assign(e, static_cast<PartitionId>(e % p));
  }
  return part;
}

TEST(PlacementTest, ReplicasMatchMetrics) {
  const Graph g = gen::erdos_renyi(100, 400, 3);
  const EdgePartition part = round_robin(g, 4);
  const Placement placement(g, part);
  const auto expected = replica_counts(g, part);
  std::size_t mirrors = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(placement.replicas(v).size(), expected[v]);
    if (expected[v] > 0) mirrors += expected[v] - 1;
  }
  EXPECT_EQ(placement.mirror_count(), mirrors);
}

TEST(PlacementTest, MasterHoldsMostEdges) {
  // Path 0-1-2-3; edges (0,1),(1,2) in part 0, (2,3) in part 1.
  const Graph g = gen::path_graph(4);
  EdgePartition part(2, 3);
  part.assign(0, 0);
  part.assign(1, 0);
  part.assign(2, 1);
  const Placement placement(g, part);
  EXPECT_EQ(placement.master(1), 0u);  // both its edges in part 0
  EXPECT_EQ(placement.master(2), 0u);  // 1 edge in each; tie -> smaller id
  EXPECT_EQ(placement.master(3), 1u);
  EXPECT_EQ(placement.mirror_count(), 1u);  // only vertex 2 is replicated
}

TEST(PlacementTest, IsolatedVertexHasNoReplicas) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  EdgePartition part(2, 1);
  part.assign(0, 0);
  const Placement placement(g, part);
  EXPECT_TRUE(placement.replicas(2).empty());
  EXPECT_EQ(placement.master(2), kNoPartition);
}

TEST(PageRank, SumsToOneAndMatchesSequential) {
  const Graph g = gen::barabasi_albert(200, 3, 5);
  const PageRankResult result = pagerank(g, round_robin(g, 4), 30);
  const double sum =
      std::accumulate(result.ranks.begin(), result.ranks.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);

  // Reference: plain sequential power iteration.
  const VertexId n = g.num_vertices();
  std::vector<double> ref(n, 1.0 / n);
  for (int it = 0; it < 30; ++it) {
    std::vector<double> next(n, 0.15 / n);
    for (VertexId v = 0; v < n; ++v) {
      for (const Neighbor& nb : g.neighbors(v)) {
        next[v] += 0.85 * ref[nb.vertex] / g.degree(nb.vertex);
      }
    }
    ref = std::move(next);
  }
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_NEAR(result.ranks[v], ref[v], 1e-9) << "vertex " << v;
  }
}

TEST(PageRank, PartitionChoiceDoesNotChangeValues) {
  const Graph g = gen::erdos_renyi(150, 600, 7);
  const auto a = pagerank(g, round_robin(g, 2), 20);
  const TlpPartitioner tlp;
  const auto b = pagerank(g, tlp.partition(g, config_for(6)), 20);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(a.ranks[v], b.ranks[v], 1e-12);
  }
}

TEST(PageRank, HubGetsHighestRank) {
  const Graph g = gen::star_graph(50);
  const auto result = pagerank(g, round_robin(g, 4), 25);
  for (VertexId leaf = 1; leaf <= 50; ++leaf) {
    EXPECT_GT(result.ranks[0], result.ranks[leaf]);
  }
}

TEST(PageRank, CommunicationScalesWithReplication) {
  // The paper's motivation: lower RF => fewer mirror-sync messages.
  const Graph g = gen::sbm(600, 5000, 12, 0.9, 11);
  const auto config = config_for(6);
  const TlpPartitioner tlp;
  const EdgePartition good = tlp.partition(g, config);
  const EdgePartition bad =
      baselines::RandomPartitioner{}.partition(g, config);
  ASSERT_LT(replication_factor(g, good), replication_factor(g, bad));

  const auto pr_good = pagerank(g, good, 5, 0.85, /*tolerance=*/0.0);
  const auto pr_bad = pagerank(g, bad, 5, 0.85, /*tolerance=*/0.0);
  ASSERT_EQ(pr_good.comm.supersteps, pr_bad.comm.supersteps);
  EXPECT_LT(pr_good.comm.total_messages(), pr_bad.comm.total_messages());
}

TEST(Components, MatchSequentialLabels) {
  const Graph g = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}, {5, 7}});
  const ComponentsResult result = distributed_components(g, round_robin(g, 3));
  const ComponentLabels ref = connected_components(g);
  // Same partition of the vertex set (labels differ in naming scheme).
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(result.labels[u] == result.labels[v],
                ref.label[u] == ref.label[v]);
    }
  }
  // Min-label convention: component label is its minimum vertex id.
  EXPECT_EQ(result.labels[2], 0u);
  EXPECT_EQ(result.labels[4], 3u);
  EXPECT_EQ(result.labels[7], 5u);
}

TEST(Components, ConvergesEarlyOnSmallDiameter) {
  const Graph g = gen::complete_graph(20);
  const ComponentsResult result =
      distributed_components(g, round_robin(g, 4), 100);
  EXPECT_LT(result.comm.supersteps, 5u);
  for (const VertexId label : result.labels) EXPECT_EQ(label, 0u);
}

TEST(Components, LongPathNeedsManySteps) {
  const Graph g = gen::path_graph(64);
  const ComponentsResult result =
      distributed_components(g, round_robin(g, 2), 200);
  EXPECT_GT(result.comm.supersteps, 10u);
  for (const VertexId label : result.labels) EXPECT_EQ(label, 0u);
}

}  // namespace
}  // namespace tlp::engine
