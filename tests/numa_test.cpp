// Tests for the NUMA topology layer (util/numa.hpp): cpulist parsing,
// sysfs detection against fake trees, the TLP_NUMA kill switch, the
// same-node-first steal victim orders, and the single-node graceful
// degradation contract (no placement state, hence no affinity syscalls).

#include "util/numa.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace tlp {
namespace {

namespace fs = std::filesystem;

/// Scoped fake sysfs node tree: root/node<i>/cpulist per entry.
class FakeSysfs {
 public:
  explicit FakeSysfs(const std::vector<std::pair<int, std::string>>& nodes) {
    root_ = fs::temp_directory_path() /
            ("tlp_numa_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
    for (const auto& [id, cpulist] : nodes) {
      const fs::path dir = root_ / ("node" + std::to_string(id));
      fs::create_directories(dir);
      std::ofstream out(dir / "cpulist");
      out << cpulist << "\n";
    }
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  [[nodiscard]] const fs::path& root() const { return root_; }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

/// Scoped TLP_NUMA override; restores the prior value on exit.
class NumaEnvGuard {
 public:
  explicit NumaEnvGuard(const char* value) {
    const char* prev = std::getenv("TLP_NUMA");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value == nullptr) {
      ::unsetenv("TLP_NUMA");
    } else {
      ::setenv("TLP_NUMA", value, 1);
    }
  }
  ~NumaEnvGuard() {
    if (had_prev_) {
      ::setenv("TLP_NUMA", prev_.c_str(), 1);
    } else {
      ::unsetenv("TLP_NUMA");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(ParseCpulist, SinglesRangesAndMixes) {
  EXPECT_EQ(numa::parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(numa::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(numa::parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  // Whitespace/newline trim (the sysfs file ends in '\n').
  EXPECT_EQ(numa::parse_cpulist(" 4-5 \n"), (std::vector<int>{4, 5}));
  // Out-of-order chunks come back sorted and deduplicated.
  EXPECT_EQ(numa::parse_cpulist("8,0-2,1"), (std::vector<int>{0, 1, 2, 8}));
}

TEST(ParseCpulist, MalformedChunksAreSkippedNotFatal) {
  EXPECT_TRUE(numa::parse_cpulist("").empty());
  EXPECT_TRUE(numa::parse_cpulist("\n").empty());
  EXPECT_TRUE(numa::parse_cpulist("abc").empty());
  EXPECT_TRUE(numa::parse_cpulist("3-1").empty());  // inverted range
  EXPECT_EQ(numa::parse_cpulist("x,2,y-3,4-5"), (std::vector<int>{2, 4, 5}));
}

TEST(Detect, TwoNodeTree) {
  const FakeSysfs sysfs({{0, "0-3"}, {1, "4-7"}});
  const numa::Topology topo = numa::detect(sysfs.root());
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.total_cpus(), 8u);
  EXPECT_EQ(topo.node_cpus[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.node_cpus[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(Detect, NodesOrderedByIdNotDirectoryOrder) {
  const FakeSysfs sysfs({{2, "8-11"}, {0, "0-3"}, {1, "4-7"}});
  const numa::Topology topo = numa::detect(sysfs.root());
  ASSERT_EQ(topo.num_nodes(), 3u);
  EXPECT_EQ(topo.node_cpus[0].front(), 0);
  EXPECT_EQ(topo.node_cpus[1].front(), 4);
  EXPECT_EQ(topo.node_cpus[2].front(), 8);
}

TEST(Detect, MemoryOnlyNodesAreSkipped) {
  // node1 has memory but no CPUs (CXL expander): nothing to pin there.
  const FakeSysfs sysfs({{0, "0-7"}, {1, ""}});
  const numa::Topology topo = numa::detect(sysfs.root());
  ASSERT_EQ(topo.num_nodes(), 1u);
  EXPECT_FALSE(topo.multi_node());
}

TEST(Detect, MissingRootYieldsEmptyTopology) {
  const numa::Topology topo =
      numa::detect("/nonexistent/tlp_numa_test_no_such_dir");
  EXPECT_EQ(topo.num_nodes(), 0u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.total_cpus(), 0u);
}

TEST(Detect, NonNodeEntriesIgnored) {
  FakeSysfs sysfs({{0, "0-1"}, {1, "2-3"}});
  // Stray files and directories a real sysfs tree carries.
  fs::create_directories(sysfs.root() / "power");
  std::ofstream(sysfs.root() / "online") << "0-1\n";
  const numa::Topology topo = numa::detect(sysfs.root());
  EXPECT_EQ(topo.num_nodes(), 2u);
}

TEST(DisabledByEnv, RecognizedSpellings) {
  for (const char* off : {"off", "OFF", "0", "false", "FALSE"}) {
    const NumaEnvGuard guard(off);
    EXPECT_TRUE(numa::disabled_by_env()) << off;
  }
  for (const char* on : {"on", "1", "auto", ""}) {
    const NumaEnvGuard guard(on);
    EXPECT_FALSE(numa::disabled_by_env()) << on;
  }
  const NumaEnvGuard unset(nullptr);
  EXPECT_FALSE(numa::disabled_by_env());
}

TEST(StealVictimOrders, SameNodeVictimsComeFirst) {
  // Workers 0,2 on node 0; workers 1,3 on node 1 (round-robin placement).
  const std::vector<std::size_t> nodes{0, 1, 0, 1};
  const auto orders = numa::steal_victim_orders(nodes);
  ASSERT_EQ(orders.size(), 4u);
  // Worker 0: same-node victim 2 first, then remote 1, 3 in modular order.
  EXPECT_EQ(orders[0], (std::vector<std::uint32_t>{2, 1, 3}));
  // Worker 1: same-node victim 3 first, then remote 2, 0.
  EXPECT_EQ(orders[1], (std::vector<std::uint32_t>{3, 2, 0}));
  EXPECT_EQ(orders[2], (std::vector<std::uint32_t>{0, 3, 1}));
  EXPECT_EQ(orders[3], (std::vector<std::uint32_t>{1, 0, 2}));
}

TEST(StealVictimOrders, SingleNodeDegeneratesToModularSweep) {
  const std::vector<std::size_t> nodes{0, 0, 0, 0};
  const auto orders = numa::steal_victim_orders(nodes);
  ASSERT_EQ(orders.size(), 4u);
  // With one node the biased order IS the classic (w+1, w+2, ...) sweep.
  EXPECT_EQ(orders[0], (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(orders[1], (std::vector<std::uint32_t>{2, 3, 0}));
  EXPECT_EQ(orders[3], (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(StealVictimOrders, EveryOrderIsAPermutationOfTheOthers) {
  const std::vector<std::size_t> nodes{0, 0, 1, 1, 2, 2, 0, 1};
  const auto orders = numa::steal_victim_orders(nodes);
  for (std::size_t w = 0; w < nodes.size(); ++w) {
    std::vector<bool> seen(nodes.size(), false);
    for (const std::uint32_t v : orders[w]) {
      ASSERT_NE(v, w) << "a worker never steals from itself";
      ASSERT_LT(v, nodes.size());
      ASSERT_FALSE(seen[v]) << "duplicate victim";
      seen[v] = true;
    }
    EXPECT_EQ(orders[w].size(), nodes.size() - 1);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool integration: graceful degradation on this (single-node or
// TLP_NUMA=off) machine, and correctness independent of placement.

TEST(ThreadPoolNuma, DisabledByEnvReportsInactive) {
  const NumaEnvGuard guard("off");
  ThreadPool pool(4);
  EXPECT_FALSE(pool.numa_pinning_active());
  EXPECT_EQ(pool.worker_node(0), 0u);
  EXPECT_EQ(pool.worker_node(3), 0u);
}

TEST(ThreadPoolNuma, SingleNodeMachineNeverPins) {
  // On a single-node machine placement must be inactive with or without
  // the env knob; on a multi-node machine this test only checks the
  // accessors stay consistent.
  ThreadPool pool(2);
  if (!numa::system_topology().multi_node()) {
    EXPECT_FALSE(pool.numa_pinning_active());
    EXPECT_EQ(pool.worker_node(0), 0u);
    EXPECT_EQ(pool.worker_node(1), 0u);
  } else {
    EXPECT_EQ(pool.numa_pinning_active(), !numa::disabled_by_env());
  }
}

TEST(ThreadPoolNuma, PoolStillRunsWorkWithPlacementDisabled) {
  const NumaEnvGuard guard("off");
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.run_indexed(hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace tlp
