// Unit tests for the work-stealing deque and its scheduling source
// (util/steal_queue.hpp) plus ThreadPool::run_stealable. The concurrent
// cases are the TSan targets for the steal path (tools/check.sh).
#include "util/steal_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace tlp {
namespace {

TEST(StealQueue, OwnerDrainsFromHeadInPushOrder) {
  StealQueue queue;
  for (std::uint32_t t = 0; t < 8; ++t) queue.push(t);
  EXPECT_EQ(queue.pending(), 8u);
  std::uint32_t task = 0;
  for (std::uint32_t expected = 0; expected < 8; ++expected) {
    ASSERT_TRUE(queue.pop_front(task));
    EXPECT_EQ(task, expected);
  }
  EXPECT_FALSE(queue.pop_front(task));
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(StealQueue, ThiefTakesFromTail) {
  StealQueue queue;
  for (std::uint32_t t = 0; t < 4; ++t) queue.push(t);
  std::uint32_t task = 0;
  ASSERT_TRUE(queue.steal_back(task));
  EXPECT_EQ(task, 3u);
  ASSERT_TRUE(queue.pop_front(task));
  EXPECT_EQ(task, 0u);
  ASSERT_TRUE(queue.steal_back(task));
  EXPECT_EQ(task, 2u);
  ASSERT_TRUE(queue.pop_front(task));
  EXPECT_EQ(task, 1u);
  EXPECT_FALSE(queue.steal_back(task));
  EXPECT_FALSE(queue.pop_front(task));
}

TEST(StealQueue, EmptyStealReturnsFalse) {
  StealQueue queue;
  std::uint32_t task = 99;
  EXPECT_FALSE(queue.steal_back(task));
  EXPECT_FALSE(queue.pop_front(task));
  EXPECT_EQ(task, 99u);  // untouched on failure
  queue.push(1);
  ASSERT_TRUE(queue.pop_front(task));
  EXPECT_FALSE(queue.steal_back(task));  // drained by the owner
}

TEST(StealQueue, ResetKeepsQueueReusable) {
  StealQueue queue;
  queue.push(7);
  std::uint32_t task = 0;
  ASSERT_TRUE(queue.steal_back(task));
  queue.reset();
  EXPECT_EQ(queue.pending(), 0u);
  queue.push(5);
  ASSERT_TRUE(queue.pop_front(task));
  EXPECT_EQ(task, 5u);
}

TEST(StealSource, SoloWorkerNeverSelfSteals) {
  std::vector<StealQueue> queues(1);
  for (std::uint32_t t = 0; t < 5; ++t) queues[0].push(t);
  StealSource source(queues, 0);
  std::uint32_t task = 0;
  for (std::uint32_t expected = 0; expected < 5; ++expected) {
    ASSERT_TRUE(source.next(task));
    EXPECT_EQ(task, expected);
  }
  EXPECT_FALSE(source.next(task));
  // Own pops are not steals, and with no victims there are no failed
  // probes either.
  EXPECT_EQ(source.stats().steals, 0u);
  EXPECT_EQ(source.stats().steal_failures, 0u);
}

TEST(StealSource, DrainsOwnQueueBeforeStealingFromVictimTails) {
  std::vector<StealQueue> queues(2);
  queues[0].push(0);
  for (const std::uint32_t t : {10u, 11u, 12u}) queues[1].push(t);
  StealSource source(queues, 0);
  std::uint32_t task = 0;
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 0u);  // own head first
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 12u);  // then the victim's tail
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 11u);
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 10u);
  EXPECT_FALSE(source.next(task));
  EXPECT_EQ(source.stats().steals, 3u);
  EXPECT_EQ(source.stats().steal_failures, 1u);  // the final empty sweep
}

TEST(StealSource, AllQueuesEmptyCountsOneFailedSweep) {
  std::vector<StealQueue> queues(4);
  StealSource source(queues, 2);
  std::uint32_t task = 0;
  EXPECT_FALSE(source.next(task));
  EXPECT_EQ(source.stats().steals, 0u);
  EXPECT_EQ(source.stats().steal_failures, 3u);  // one probe per victim
}

// Concurrent steal under TSan: every task runs exactly once even when all
// the work sits in one queue and three thieves hammer its tail.
TEST(StealQueue, ConcurrentStealCoversEveryTaskExactlyOnce) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint32_t kTasks = 2000;
  ThreadPool pool(kWorkers);
  std::vector<StealQueue> queues(kWorkers);
  for (std::uint32_t t = 0; t < kTasks; ++t) queues[0].push(t);
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<StealStats> stats;
  pool.run_stealable(
      queues,
      [&](std::size_t /*worker*/, StealSource& source) {
        std::uint32_t task = 0;
        while (source.next(task)) ++hits[task];
      },
      &stats);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  ASSERT_EQ(stats.size(), kWorkers);
  std::uint64_t steals = 0;
  for (const StealStats& s : stats) steals += s.steals;
  EXPECT_LE(steals, kTasks);  // a task is stolen at most once
  for (StealQueue& queue : queues) EXPECT_EQ(queue.pending(), 0u);
}

// An explicit victim order (the NUMA same-node-first bias) changes only
// which queue a thief probes first — the drained task set is identical.
TEST(StealQueue, ExplicitVictimOrderDrainsEverythingInOrderGiven) {
  std::vector<StealQueue> queues(4);
  queues[1].push(10);
  queues[2].push(20);
  queues[3].push(30);
  // Worker 0, biased order: probe 3 first, then 1, then 2.
  const std::vector<std::uint32_t> order{3, 1, 2};
  StealSource source(queues, 0, &order);
  std::uint32_t task = 0;
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 30u);  // queue 3 probed first per the explicit order
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 10u);
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 20u);
  EXPECT_FALSE(source.next(task));
  EXPECT_EQ(source.stats().steals, 3u);
}

// Out-of-range and self entries in a victim order are skipped, so a
// pool-sized order works for phases that use fewer queues than workers.
TEST(StealQueue, VictimOrderSkipsSelfAndOutOfRangeEntries) {
  std::vector<StealQueue> queues(2);
  queues[1].push(7);
  const std::vector<std::uint32_t> order{0, 5, 1};  // self, oob, real
  StealSource source(queues, 0, &order);
  std::uint32_t task = 0;
  ASSERT_TRUE(source.next(task));
  EXPECT_EQ(task, 7u);
  EXPECT_FALSE(source.next(task));
  EXPECT_EQ(source.stats().steals, 1u);
}

// The imbalance mechanism itself, deterministically: 8 sleep-tasks all
// owned by worker 0 must end up split with worker 1 once stealing is on.
// Sleeps overlap even on a single core, so this holds on any host.
TEST(StealQueue, RunStealableBalancesSleepTasks) {
  ThreadPool pool(2);
  std::vector<StealQueue> queues(2);
  for (std::uint32_t t = 0; t < 8; ++t) queues[0].push(t);
  std::vector<StealStats> stats;
  std::atomic<int> ran{0};
  pool.run_stealable(
      queues,
      [&](std::size_t /*worker*/, StealSource& source) {
        std::uint32_t task = 0;
        while (source.next(task)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          ++ran;
        }
      },
      &stats);
  EXPECT_EQ(ran.load(), 8);
  ASSERT_EQ(stats.size(), 2u);
  // Worker 1 found its own queue empty while worker 0 was asleep in task 0
  // and must have stolen several tasks from worker 0's tail.
  EXPECT_GE(stats[1].steals, 2u);
}

}  // namespace
}  // namespace tlp
