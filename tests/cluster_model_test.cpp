// Tests for machine loads and the cluster cost model.
#include <gtest/gtest.h>

#include "core/tlp.hpp"
#include "engine/cluster_model.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"

namespace tlp::engine {
namespace {

TEST(MachineLoads, PathSplitByHand) {
  // Path 0-1-2-3; edges (0,1),(1,2) on machine 0, (2,3) on machine 1.
  const Graph g = gen::path_graph(4);
  EdgePartition part(2, 3);
  part.assign(0, 0);
  part.assign(1, 0);
  part.assign(2, 1);
  const auto loads = machine_loads(g, part);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].edges, 2u);
  EXPECT_EQ(loads[1].edges, 1u);
  // Only vertex 2 is replicated: master on 0 (tie -> smaller id), mirror on
  // 1. Gather: 1 sends 1 to 0. Scatter: 0 sends 1 to 1.
  EXPECT_EQ(loads[1].sent, 1u);
  EXPECT_EQ(loads[0].received, 1u);
  EXPECT_EQ(loads[0].sent, 1u);
  EXPECT_EQ(loads[1].received, 1u);
}

TEST(MachineLoads, NoReplicationNoTraffic) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EdgePartition part(2, 2);
  part.assign(0, 0);
  part.assign(1, 1);
  for (const MachineLoad& load : machine_loads(g, part)) {
    EXPECT_EQ(load.sent, 0u);
    EXPECT_EQ(load.received, 0u);
  }
}

TEST(MachineLoads, TotalsMatchMirrorCount) {
  const Graph g = gen::erdos_renyi(200, 800, 61);
  const TlpPartitioner tlp;
  PartitionConfig config;
  config.num_partitions = 5;
  const EdgePartition part = tlp.partition(g, config);
  const Placement placement(g, part);
  const auto loads = machine_loads(g, part);
  std::size_t sent = 0;
  std::size_t received = 0;
  EdgeId edges = 0;
  for (const MachineLoad& load : loads) {
    sent += load.sent;
    received += load.received;
    edges += load.edges;
  }
  // One gather + one scatter message per mirror.
  EXPECT_EQ(sent, 2 * placement.mirror_count());
  EXPECT_EQ(received, 2 * placement.mirror_count());
  EXPECT_EQ(edges, g.num_edges());
}

TEST(CostModel, ComputeScalesWithEdges) {
  const Graph g = gen::complete_graph(12);  // 66 edges
  EdgePartition skew(2, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) skew.assign(e, 0);
  ClusterCostConfig config;
  config.seconds_per_edge = 1.0;  // make compute dominant and readable
  config.barrier_seconds = 0.0;
  const SuperstepEstimate estimate = estimate_superstep(g, skew, config);
  EXPECT_DOUBLE_EQ(estimate.compute_seconds, 66.0);
  EXPECT_EQ(estimate.compute_bottleneck, 0u);
  EXPECT_DOUBLE_EQ(estimate.comm_seconds, 0.0);  // one machine, no mirrors
}

TEST(CostModel, BarrierAlwaysCharged) {
  const Graph g = gen::path_graph(3);
  EdgePartition part(2, 2);
  part.assign(0, 0);
  part.assign(1, 1);
  ClusterCostConfig config;
  config.barrier_seconds = 0.5;
  const SuperstepEstimate estimate = estimate_superstep(g, part, config);
  EXPECT_DOUBLE_EQ(estimate.barrier_seconds, 0.5);
  EXPECT_GE(estimate.total_seconds(), 0.5);
}

TEST(CostModel, LowerRfGivesCheaperSupersteps) {
  const Graph g = gen::sbm(600, 5000, 12, 0.9, 63);
  PartitionConfig config;
  config.num_partitions = 6;
  const TlpPartitioner tlp;
  const EdgePartition good = tlp.partition(g, config);
  EdgePartition bad(6, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    bad.assign(e, static_cast<PartitionId>((e * 2654435761u) % 6));
  }
  ASSERT_LT(replication_factor(g, good), replication_factor(g, bad));
  // Communication term must be cheaper for the better partition.
  EXPECT_LT(estimate_superstep(g, good).comm_seconds,
            estimate_superstep(g, bad).comm_seconds);
}

}  // namespace
}  // namespace tlp::engine
