// Tests for the gain-heap refinement engine (src/refine/engine.hpp) and
// the parallel BSP mover (src/refine/parallel_mover.hpp): the differential
// suite against the greedy oracle, the bit-identity sweep across worker
// counts / stealing / claim transports, and the RF / balance invariants on
// randomized partitions.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/refine_rf.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/validator.hpp"
#include "refine/engine.hpp"
#include "refine/move_state.hpp"
#include "refine/parallel_mover.hpp"

namespace tlp {
namespace {

PartitionConfig config_for(PartitionId p) {
  PartitionConfig config;
  config.num_partitions = p;
  return config;
}

EdgePartition random_partition(const Graph& g, PartitionId p,
                               std::uint64_t seed) {
  PartitionConfig config = config_for(p);
  config.seed = seed;
  return baselines::RandomPartitioner{}.partition(g, config);
}

/// The greedy oracle finding ZERO moves is the shared fixed-point check:
/// both engines stop only when no strictly positive admissible move exists,
/// which is exactly greedy's termination condition (same gain model, same
/// cap).
std::size_t greedy_moves_left(const Graph& g, EdgePartition& part,
                              double slack) {
  RefineOptions oracle;
  oracle.engine = RefineEngine::kGreedy;
  oracle.max_passes = 1;
  oracle.balance_slack = slack;
  return refine_replication(g, part, oracle).moves;
}

TEST(RefineEngine, ConvergesToGreedyFixedPoint) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::chung_lu_power_law(400, 2000, 2.1, seed);
    EdgePartition part = random_partition(g, 6, seed);
    refine::EngineOptions options;
    options.max_passes = 64;  // run to convergence, not a pass budget
    (void)refine::refine_gain(g, part, options);
    EXPECT_EQ(greedy_moves_left(g, part, options.balance_slack), 0u)
        << "seed " << seed;
  }
}

TEST(RefineEngine, MatchesOrBeatsGreedyOracle) {
  // Same gain model + an ordering + escapes: the engine must never end up
  // worse than the oracle from the same start.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::sbm(500, 4000, 10, 0.9, seed);
    EdgePartition greedy_part = random_partition(g, 6, seed);
    EdgePartition engine_part = greedy_part;

    RefineOptions oracle;
    oracle.engine = RefineEngine::kGreedy;
    oracle.max_passes = 64;
    (void)refine_replication(g, greedy_part, oracle);

    refine::EngineOptions options;
    options.max_passes = 64;
    (void)refine::refine_gain(g, engine_part, options);

    EXPECT_LE(replication_factor(g, engine_part),
              replication_factor(g, greedy_part))
        << "seed " << seed;
  }
}

TEST(RefineEngine, EscapeMovesNeverWorsenASinglePass) {
  // Within one pass the pure hill-climb walk is a prefix of the escape
  // walk, and rollback keeps only the best prefix — so escapes can only
  // help (or tie).
  const Graph g = gen::chung_lu_power_law(500, 2500, 2.2, 11);
  EdgePartition pure = random_partition(g, 5, 11);
  EdgePartition escape = pure;

  refine::EngineOptions options;
  options.max_passes = 1;
  options.escape_budget = 0;
  (void)refine::refine_gain(g, pure, options);

  options.escape_budget = 64;
  (void)refine::refine_gain(g, escape, options);

  EXPECT_LE(replication_factor(g, escape), replication_factor(g, pure));
}

TEST(RefineEngine, NeverWorsensRfAndStaysValid) {
  const auto config = config_for(6);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::chung_lu_power_law(500, 2500, 2.1, seed);
    EdgePartition part = random_partition(g, 6, seed);
    const double before = replication_factor(g, part);
    const refine::EngineStats stats = refine::refine_gain(g, part);
    EXPECT_LE(replication_factor(g, part), before) << "seed " << seed;
    EXPECT_TRUE(validate(g, part, config).ok()) << "seed " << seed;
    EXPECT_GE(stats.passes, 1);
  }
}

TEST(RefineEngine, RespectsBalanceCeiling) {
  const Graph g = gen::caveman_graph(4, 10);
  EdgePartition part = random_partition(g, 4, 3);
  refine::EngineOptions options;
  options.balance_slack = 1.05;
  options.escape_budget = 64;  // escapes must respect the ceiling too
  (void)refine::refine_gain(g, part, options);
  EXPECT_LE(balance_factor(part), 1.15);  // 1.05 cap + integer rounding
}

TEST(RefineEngine, ReplicaAccountingMatchesMetrics) {
  const Graph g = gen::erdos_renyi(300, 1500, 9);
  EdgePartition part = random_partition(g, 5, 9);
  const auto count_replicas = [&] {
    std::size_t total = 0;
    for (const auto c : replica_counts(g, part)) total += c;
    return total;
  };
  const std::size_t before = count_replicas();
  const refine::EngineStats stats = refine::refine_gain(g, part);
  EXPECT_EQ(before - count_replicas(), stats.replicas_removed);
}

TEST(RefineEngine, NoOpOnSinglePartitionOrEmpty) {
  const Graph g = gen::path_graph(5);
  EdgePartition one(1, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) one.assign(e, 0);
  EXPECT_EQ(refine::refine_gain(g, one).moves, 0u);

  EdgePartition empty(3, EdgeId{0});
  const Graph none;
  EXPECT_EQ(refine::refine_gain(none, empty).moves, 0u);
}

TEST(RefineEngine, DeterministicAcrossRuns) {
  const Graph g = gen::sbm(400, 3200, 8, 0.85, 5);
  EdgePartition a = random_partition(g, 6, 5);
  EdgePartition b = a;
  const refine::EngineStats sa = refine::refine_gain(g, a);
  const refine::EngineStats sb = refine::refine_gain(g, b);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_EQ(sa.moves, sb.moves);
  EXPECT_EQ(sa.escape_moves, sb.escape_moves);
}

TEST(RefineEngine, TelemetryKeysAlwaysPresent) {
  const Graph g = gen::erdos_renyi(200, 800, 7);
  const auto config = config_for(4);
  for (const RefineEngine engine :
       {RefineEngine::kGainHeap, RefineEngine::kGreedy,
        RefineEngine::kParallel}) {
    RefineOptions options;
    options.engine = engine;
    RefinedPartitioner refined(
        std::make_unique<baselines::RandomPartitioner>(), options);
    RunContext ctx;
    const EdgePartition part = refined.partition(g, config, ctx);
    EXPECT_TRUE(validate(g, part, config).ok());
    const auto& counters = ctx.telemetry().counters();
    for (const char* key :
         {"refine_moves", "refine_replicas_removed", "refine_passes",
          "refine_gain_applied", "refine_escape_moves", "refine_rollbacks",
          "refine_heap_rebuilds", "refine_super_steps",
          "refine_move_conflicts", "refine_messages_sent"}) {
      EXPECT_TRUE(counters.contains(key))
          << key << " missing for engine " << static_cast<int>(engine);
    }
    EXPECT_GT(ctx.telemetry().timers().at("refine_s"), 0.0);
  }
}

TEST(RefineParallel, ImprovesRfAndStaysValid) {
  const auto config = config_for(6);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::sbm(500, 4000, 10, 0.9, seed);
    EdgePartition part = random_partition(g, 6, seed);
    const double before = replication_factor(g, part);
    RunContext ctx;
    refine::ParallelOptions options;
    const refine::ParallelStats stats =
        refine::refine_parallel(g, part, options, ctx);
    EXPECT_LT(replication_factor(g, part), before) << "seed " << seed;
    EXPECT_TRUE(validate(g, part, config).ok()) << "seed " << seed;
    EXPECT_GT(stats.moves, 0u);
    EXPECT_GE(stats.rounds, 1u);
  }
}

TEST(RefineParallel, QuiescesToGreedyFixedPoint) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = gen::chung_lu_power_law(400, 2000, 2.1, seed);
    EdgePartition part = random_partition(g, 6, seed);
    RunContext ctx;
    refine::ParallelOptions options;
    (void)refine::refine_parallel(g, part, options, ctx);
    EXPECT_EQ(greedy_moves_left(g, part, options.balance_slack), 0u)
        << "seed " << seed;
  }
}

TEST(RefineParallel, RespectsBalanceCeiling) {
  const Graph g = gen::caveman_graph(4, 10);
  EdgePartition part = random_partition(g, 4, 3);
  RunContext ctx;
  refine::ParallelOptions options;
  options.balance_slack = 1.05;
  (void)refine::refine_parallel(g, part, options, ctx);
  EXPECT_LE(balance_factor(part), 1.15);
}

TEST(RefineParallel, BitIdenticalAcrossThreadsStealAndClaimShards) {
  const Graph g = gen::chung_lu_power_law(600, 3600, 2.1, 13);
  const EdgePartition start = random_partition(g, 8, 13);

  // Reference: inline, no stealing, shared-memory claims.
  refine::ParallelOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.steal = false;
  reference_options.num_shards = 0;
  EdgePartition reference = start;
  RunContext reference_ctx;
  const refine::ParallelStats reference_stats =
      refine::refine_parallel(g, reference, reference_options, reference_ctx);
  EXPECT_GT(reference_stats.moves, 0u);

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t threads : std::vector<std::size_t>{1, 2, 8, hw}) {
    for (const bool steal : {false, true}) {
      for (const std::uint32_t shards : {0u, 4u}) {
        refine::ParallelOptions options;
        options.num_threads = threads;
        options.steal = steal;
        options.num_shards = shards;
        EdgePartition part = start;
        RunContext ctx;
        const refine::ParallelStats stats =
            refine::refine_parallel(g, part, options, ctx);
        const auto label = ::testing::Message()
                           << "threads=" << threads << " steal=" << steal
                           << " claim_shards=" << shards;
        EXPECT_EQ(part.raw(), reference.raw()) << label;
        EXPECT_EQ(stats.moves, reference_stats.moves) << label;
        EXPECT_EQ(stats.replicas_removed, reference_stats.replicas_removed)
            << label;
        EXPECT_EQ(stats.super_steps, reference_stats.super_steps) << label;
        EXPECT_EQ(stats.rounds, reference_stats.rounds) << label;
        EXPECT_EQ(stats.conflicts, reference_stats.conflicts) << label;
        EXPECT_EQ(stats.heap_rebuilds, reference_stats.heap_rebuilds)
            << label;
        // Claim traffic exists iff the message-passing transport is on.
        if (shards == 0) {
          EXPECT_EQ(stats.messages_sent, 0u) << label;
        } else {
          EXPECT_GT(stats.messages_sent, 0u) << label;
        }
      }
    }
  }
}

TEST(RefineParallel, HeapShardCountIsPartOfTheAlgorithm) {
  // Different H may legally produce different (still valid, still
  // improving) schedules — but each H must be self-consistent across
  // thread counts. Spot-check H=3 against its own reference.
  const Graph g = gen::sbm(400, 3200, 8, 0.85, 17);
  const EdgePartition start = random_partition(g, 6, 17);
  refine::ParallelOptions options;
  options.heap_shards = 3;
  options.num_threads = 1;
  EdgePartition reference = start;
  RunContext reference_ctx;
  (void)refine::refine_parallel(g, reference, options, reference_ctx);

  options.num_threads = 3;
  EdgePartition part = start;
  RunContext ctx;
  (void)refine::refine_parallel(g, part, options, ctx);
  EXPECT_EQ(part.raw(), reference.raw());
}

TEST(RefineParallel, NoOpOnSinglePartitionOrEmpty) {
  const Graph g = gen::path_graph(5);
  EdgePartition one(1, g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) one.assign(e, 0);
  RunContext ctx1;
  refine::ParallelOptions options;
  EXPECT_EQ(refine::refine_parallel(g, one, options, ctx1).moves, 0u);

  EdgePartition empty(3, EdgeId{0});
  const Graph none;
  RunContext ctx2;
  EXPECT_EQ(refine::refine_parallel(none, empty, options, ctx2).moves, 0u);
}

}  // namespace
}  // namespace tlp
