// Tests for the paper-dataset registry (synthetic stand-ins, Table III).
#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_common/datasets.hpp"
#include "graph/stats.hpp"

namespace tlp::bench {
namespace {

TEST(Datasets, NineSpecsInPaperOrder) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs[0].id, "G1");
  EXPECT_EQ(specs[0].paper_name, "email-Eu-core");
  EXPECT_EQ(specs[8].id, "G9");
  EXPECT_EQ(specs[8].paper_name, "huapu");
}

TEST(Datasets, UnknownIdThrows) {
  EXPECT_THROW((void)make_dataset("G10"), std::out_of_range);
  EXPECT_THROW((void)default_scale("nope"), std::out_of_range);
}

TEST(Datasets, DefaultScales) {
  EXPECT_DOUBLE_EQ(default_scale("G1"), 1.0);
  EXPECT_DOUBLE_EQ(default_scale("G9"), 0.1);  // shrunk by default
}

TEST(Datasets, SmallScaleBuildsMatchTargetsApproximately) {
  // Build every dataset at 2% scale: fast, and checks every generator
  // config is wired correctly.
  for (const DatasetSpec& spec : paper_datasets()) {
    const double scale = 0.02;
    const Graph g = make_dataset(spec.id, scale);
    EXPECT_GT(g.num_vertices(), 0u) << spec.id;
    EXPECT_GT(g.num_edges(), 0u) << spec.id;
    // Vertices within 2x of the scaled target (generators may trim).
    const double target_n = static_cast<double>(spec.paper_vertices) * scale;
    EXPECT_LT(static_cast<double>(g.num_vertices()), 2.5 * target_n + 64)
        << spec.id;
  }
}

TEST(Datasets, G1AtFullScaleMatchesPaperSize) {
  const Graph g = make_dataset("G1");
  EXPECT_EQ(g.num_vertices(), 1005u);
  EXPECT_EQ(g.num_edges(), 25571u);
}

TEST(Datasets, Deterministic) {
  const Graph a = make_dataset("G2", 0.05);
  const Graph b = make_dataset("G2", 0.05);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e), b.edge(e));
  }
}

TEST(Datasets, PowerLawStandInsHaveHeavyTails) {
  const Graph g = make_dataset("G2", 0.5);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.max_degree, 10 * static_cast<std::size_t>(s.avg_degree));
}

TEST(Datasets, GenealogyStandInHasLowAverageDegree) {
  const Graph g = make_dataset("G9", 0.02);
  const GraphStats s = compute_stats(g);
  EXPECT_LT(s.avg_degree, 6.0);  // huapu: ~3.3
  EXPECT_GT(s.avg_degree, 1.5);
}

}  // namespace
}  // namespace tlp::bench
