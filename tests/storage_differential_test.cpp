// Differential contract of the storage-policy seam: every partitioner
// must produce byte-identical assignments whether the CSR lives in heap
// vectors, in a read-only mapped file, or split across both — the tier is
// invisible to the algorithms by construction, and this suite pins that.
//
// Sweep: {tlp, tlp_r0.5, multi_tlp at threads {1,2,8} x shards {1,4}}
// x {in_memory, mmap, hybrid at tau in {0, median-degree, inf}}, plus a
// registry-wide single-config pass over every registered algorithm.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "bench_common/runner.hpp"
#include "core/multi_tlp.hpp"
#include "core/tlp.hpp"
#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/storage.hpp"
#include "partition/registry.hpp"

namespace tlp {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

std::size_t median_degree(const Graph& g) {
  std::vector<std::size_t> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  if (degrees.empty()) return 0;
  std::nth_element(degrees.begin(), degrees.begin() + degrees.size() / 2,
                   degrees.end());
  return degrees[degrees.size() / 2];
}

/// The tier sweep the issue pins: in-memory reference plus mmap and hybrid
/// at tau in {0, median-degree, inf} (pinning on and off at tau=0 to
/// exercise the pinned-hub path).
std::vector<std::pair<std::string, StorageOptions>> tier_sweep(
    const Graph& reference) {
  const std::size_t median = median_degree(reference);
  std::vector<std::pair<std::string, StorageOptions>> tiers;
  tiers.emplace_back("in_memory", StorageOptions::parse("in_memory"));
  tiers.emplace_back("mmap", StorageOptions::parse("mmap"));
  for (const std::size_t tau : {std::size_t{0}, median, kMax}) {
    StorageOptions o;
    o.tier = StorageTier::kHybrid;
    o.degree_threshold = tau;
    tiers.emplace_back("hybrid:" + std::to_string(tau), o);
  }
  StorageOptions unpinned;
  unpinned.tier = StorageTier::kHybrid;
  unpinned.degree_threshold = 0;
  unpinned.pinned_cache_bytes = 0;
  tiers.emplace_back("hybrid:0:unpinned", unpinned);
  return tiers;
}

class StorageDifferential : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench::register_builtin_partitioners();
    graph_ = new Graph(gen::chung_lu_power_law(3000, 12000, 2.1, 42));
    // PID-unique: ctest -j runs each test row as its own process, and
    // concurrent rows sharing one spill path race write/map/unlink.
    csr_path_ = new fs::path(
        fs::temp_directory_path() /
        ("tlp_storage_differential_" + std::to_string(::getpid()) + ".tlpc"));
    io::write_csr_file(*graph_, *csr_path_);
  }
  static void TearDownTestSuite() {
    fs::remove(*csr_path_);
    delete csr_path_;
    csr_path_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static const Graph& reference() { return *graph_; }
  static const fs::path& csr_path() { return *csr_path_; }

  static Graph* graph_;
  static fs::path* csr_path_;
};

Graph* StorageDifferential::graph_ = nullptr;
fs::path* StorageDifferential::csr_path_ = nullptr;

TEST_F(StorageDifferential, TlpAndResidualAcrossTiers) {
  PartitionConfig config;
  config.num_partitions = 10;
  const std::vector<TlpPartitioner> algos = {TlpPartitioner{},
                                             make_tlp_r(0.5)};
  for (const TlpPartitioner& partitioner : algos) {
    const EdgePartition expected =
        partitioner.partition(reference(), config);
    for (const auto& [label, options] : tier_sweep(reference())) {
      SCOPED_TRACE(partitioner.name() + " on " + label);
      const Graph tiered = io::load_csr_file(csr_path(), options);
      const EdgePartition actual = partitioner.partition(tiered, config);
      EXPECT_EQ(actual.raw(), expected.raw());
    }
  }
}

TEST_F(StorageDifferential, MultiTlpThreadsShardsAcrossTiers) {
  PartitionConfig config;
  config.num_partitions = 8;
  // Reference: shared-memory single thread on the in-memory graph.
  const EdgePartition expected =
      MultiTlpPartitioner{}.partition(reference(), config);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::uint32_t shards : {0u, 4u}) {
      MultiTlpOptions mo;
      mo.num_threads = threads;
      mo.num_shards = shards;
      const MultiTlpPartitioner partitioner{mo};
      for (const auto& [label, options] : tier_sweep(reference())) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards) + " on " + label);
        const Graph tiered = io::load_csr_file(csr_path(), options);
        const EdgePartition actual = partitioner.partition(tiered, config);
        EXPECT_EQ(actual.raw(), expected.raw());
      }
    }
  }
}

TEST_F(StorageDifferential, EveryRegisteredPartitionerTierInvariant) {
  // Broad, shallow sweep: each registered algorithm once, in-memory vs
  // mmap vs one hybrid split, on a smaller graph (some baselines are
  // superlinear). Catches any algorithm that sneaks around the facade.
  const Graph small = gen::chung_lu_power_law(400, 1600, 2.1, 7);
  const fs::path path =
      fs::temp_directory_path() /
      ("tlp_storage_registry_" + std::to_string(::getpid()) + ".tlpc");
  io::write_csr_file(small, path);
  PartitionConfig config;
  config.num_partitions = 4;
  for (const std::string& name : registered_partitioners()) {
    const PartitionerPtr partitioner = make_partitioner(name);
    const EdgePartition expected = partitioner->partition(small, config);
    for (const char* spec : {"mmap", "hybrid:2"}) {
      SCOPED_TRACE(name + " on " + spec);
      const Graph tiered =
          io::load_csr_file(path, StorageOptions::parse(spec));
      const EdgePartition actual = partitioner->partition(tiered, config);
      EXPECT_EQ(actual.raw(), expected.raw());
    }
  }
  fs::remove(path);
}

TEST_F(StorageDifferential, MadviseToggleIsValueInvariant) {
  // madvise is purely advisory — paging hints must never change a single
  // assignment, on any tier, for the algorithms that drive prefetch from
  // their two-hop passes.
  PartitionConfig config;
  config.num_partitions = 8;
  const bool saved = madvise_enabled();
  const EdgePartition expected_tlp =
      TlpPartitioner{}.partition(reference(), config);
  const EdgePartition expected_multi =
      MultiTlpPartitioner{}.partition(reference(), config);
  for (const bool enabled : {true, false}) {
    set_madvise_enabled(enabled);
    for (const auto& [label, options] : tier_sweep(reference())) {
      SCOPED_TRACE(std::string("madvise=") + (enabled ? "on" : "off") +
                   " on " + label);
      const Graph tiered = io::load_csr_file(csr_path(), options);
      EXPECT_EQ(TlpPartitioner{}.partition(tiered, config).raw(),
                expected_tlp.raw());
      EXPECT_EQ(MultiTlpPartitioner{}.partition(tiered, config).raw(),
                expected_multi.raw());
    }
  }
  set_madvise_enabled(saved);
}

TEST_F(StorageDifferential, SpillBuiltGraphPartitionsIdentically) {
  // The same edge stream through the in-memory builder and through the
  // external-sort spill path (tiny budget, many runs) must yield graphs
  // that every registered partitioner treats identically — spilling is a
  // memory regime, never a semantic one. (The generator-built reference()
  // is not usable as the baseline here: builders canonicalize edge-id
  // order, generators keep insertion order.)
  GraphBuilder in_memory(/*relabel=*/false);
  GraphBuilder spill(/*relabel=*/false);
  spill.set_memory_budget(1 << 10);  // forces many spill runs
  for (EdgeId e = 0; e < reference().num_edges(); ++e) {
    const Edge& edge = reference().edge(e);
    in_memory.add_edge(edge.u, edge.v);
    spill.add_edge(edge.u, edge.v);
  }
  const Graph baseline = in_memory.build();
  BuildReport report;
  const Graph rebuilt = spill.build(&report);
  EXPECT_GT(report.spill_runs, 0u);
  PartitionConfig config;
  config.num_partitions = 6;
  for (const std::string& name : registered_partitioners()) {
    SCOPED_TRACE(name + " on spill-built graph");
    const PartitionerPtr partitioner = make_partitioner(name);
    const EdgePartition expected = partitioner->partition(baseline, config);
    EXPECT_EQ(partitioner->partition(rebuilt, config).raw(), expected.raw());
  }
}

TEST_F(StorageDifferential, WindowTlpAcrossTiers) {
  // window_tlp consumes the graph through an edge stream; the stream reads
  // edges() off the facade, so it must be tier-invariant too.
  PartitionConfig config;
  config.num_partitions = 6;
  const PartitionerPtr partitioner = make_partitioner("window_tlp");
  const EdgePartition expected = partitioner->partition(reference(), config);
  for (const auto& [label, options] : tier_sweep(reference())) {
    SCOPED_TRACE("window_tlp on " + label);
    const Graph tiered = io::load_csr_file(csr_path(), options);
    EXPECT_EQ(partitioner->partition(tiered, config).raw(), expected.raw());
  }
}

}  // namespace
}  // namespace tlp
