// Tests for clustering coefficients and k-core decomposition.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "graph/algorithms.hpp"

namespace tlp {
namespace {

TEST(Clustering, CompleteGraphIsOne) {
  const Graph g = gen::complete_graph(6);
  for (const double c : local_clustering(g)) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(g), 1.0);
}

TEST(Clustering, TreeIsZero) {
  const Graph g = gen::star_graph(10);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(g), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  // Triangle {0,1,2} plus edge (2,3).
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto local = local_clustering(g);
  EXPECT_DOUBLE_EQ(local[0], 1.0);
  EXPECT_DOUBLE_EQ(local[1], 1.0);
  EXPECT_DOUBLE_EQ(local[2], 1.0 / 3.0);  // 1 triangle of C(3,2)=3 wedges
  EXPECT_DOUBLE_EQ(local[3], 0.0);
  // Global: 3 closed wedge-ends... transitivity = 3*1 / (1+1+3) = 0.6.
  EXPECT_DOUBLE_EQ(global_clustering(g), 3.0 / 5.0);
}

TEST(Clustering, DegreeOneVerticesExcludedFromAverage) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  // Average over {0,1,2} only: (1 + 1 + 1/3)/3.
  EXPECT_NEAR(average_clustering(g), (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
}

TEST(Clustering, SbmBeatsErdosRenyi) {
  // Planted communities produce far more triangles than an equal-density
  // random graph — the property the DCSBM dataset stand-ins rely on.
  const Graph sbm = gen::sbm(600, 6000, 20, 0.9, 51);
  const Graph er = gen::erdos_renyi(600, 6000, 51);
  EXPECT_GT(average_clustering(sbm), 2.0 * average_clustering(er));
}

TEST(KCore, PathAndCycle) {
  const auto path_cores = core_numbers(gen::path_graph(6));
  for (const auto c : path_cores) EXPECT_EQ(c, 1u);
  const auto cycle_cores = core_numbers(gen::cycle_graph(6));
  for (const auto c : cycle_cores) EXPECT_EQ(c, 2u);
}

TEST(KCore, CompleteGraph) {
  const auto cores = core_numbers(gen::complete_graph(7));
  for (const auto c : cores) EXPECT_EQ(c, 6u);
  EXPECT_EQ(degeneracy(gen::complete_graph(7)), 6u);
}

TEST(KCore, CliqueWithPendantPath) {
  // K4 on {0..3} plus path 3-4-5.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  const auto core = core_numbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[1], 3u);
  EXPECT_EQ(core[2], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(KCore, IsolatedVerticesAreZero) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const auto core = core_numbers(g);
  EXPECT_EQ(core[2], 0u);
}

TEST(KCore, CoreIsMonotoneUnderDegree) {
  const Graph g = gen::barabasi_albert(500, 3, 53);
  const auto core = core_numbers(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core[v], g.degree(v));
  }
  EXPECT_GE(degeneracy(g), 3u);  // BA(m=3) has a 3-core
}

TEST(KCore, PeelingInvariant) {
  // Every vertex of core number k has >= k neighbors with core >= k.
  const Graph g = gen::erdos_renyi(300, 1800, 57);
  const auto core = core_numbers(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::size_t strong = 0;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (core[nb.vertex] >= core[v]) ++strong;
    }
    EXPECT_GE(strong, core[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace tlp
