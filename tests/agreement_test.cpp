// Tests for partition agreement metrics (Rand index, replica Jaccard).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tlp.hpp"
#include "baselines/baselines.hpp"
#include "gen/generators.hpp"
#include "partition/agreement.hpp"

namespace tlp {
namespace {

EdgePartition from_labels(PartitionId p, std::vector<PartitionId> labels) {
  return EdgePartition(p, std::move(labels));
}

TEST(RandIndex, IdenticalPartitionsScoreOne) {
  const auto a = from_labels(3, {0, 1, 2, 0, 1});
  EXPECT_DOUBLE_EQ(edge_rand_index(a, a), 1.0);
  EXPECT_DOUBLE_EQ(edge_adjusted_rand_index(a, a), 1.0);
}

TEST(RandIndex, LabelRenamingIsInvisible) {
  const auto a = from_labels(2, {0, 0, 1, 1});
  const auto b = from_labels(2, {1, 1, 0, 0});
  EXPECT_DOUBLE_EQ(edge_rand_index(a, b), 1.0);
  EXPECT_DOUBLE_EQ(edge_adjusted_rand_index(a, b), 1.0);
}

TEST(RandIndex, HandComputedDisagreement) {
  // a: {0,1} | {2,3};  b: {0,2} | {1,3}. Of the 6 pairs, only (0,1) vs ...
  // pairs together in a: (0,1),(2,3); in b: (0,2),(1,3). No pair is
  // together in both; pairs apart in both: (0,3),(1,2). Agreements = 2.
  const auto a = from_labels(2, {0, 0, 1, 1});
  const auto b = from_labels(2, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(edge_rand_index(a, b), 2.0 / 6.0);
}

TEST(RandIndex, SizeMismatchThrows) {
  const auto a = from_labels(2, {0, 1});
  const auto b = from_labels(2, {0, 1, 0});
  EXPECT_THROW((void)edge_rand_index(a, b), std::invalid_argument);
}

TEST(RandIndex, AdjustedNearZeroForIndependentRandom) {
  const Graph g = gen::erdos_renyi(400, 3000, 121);
  PartitionConfig c1;
  c1.num_partitions = 8;
  c1.seed = 1;
  PartitionConfig c2 = c1;
  c2.seed = 2;
  const baselines::RandomPartitioner random;
  const double ari = edge_adjusted_rand_index(random.partition(g, c1),
                                              random.partition(g, c2));
  EXPECT_NEAR(ari, 0.0, 0.02);
}

TEST(RandIndex, TlpMoreStableThanRandomAcrossSeeds) {
  const Graph g = gen::sbm(500, 4000, 10, 0.9, 123);
  PartitionConfig c1;
  c1.num_partitions = 5;
  c1.seed = 1;
  PartitionConfig c2 = c1;
  c2.seed = 2;
  const TlpPartitioner tlp;
  const baselines::RandomPartitioner random;
  const double ari_tlp = edge_adjusted_rand_index(tlp.partition(g, c1),
                                                  tlp.partition(g, c2));
  const double ari_rnd = edge_adjusted_rand_index(random.partition(g, c1),
                                                  random.partition(g, c2));
  // TLP follows community structure: far more seed-stable than hashing.
  EXPECT_GT(ari_tlp, ari_rnd + 0.1);
}

TEST(ReplicaJaccard, IdenticalIsOne) {
  const Graph g = gen::path_graph(5);
  const auto part = from_labels(2, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(replica_set_jaccard(g, part, part), 1.0);
}

TEST(ReplicaJaccard, HandComputed) {
  // Path 0-1-2: a = [0,1], b = [0,0].
  // Replicas under a: v0:{0}, v1:{0,1}, v2:{1}; under b: v0:{0}, v1:{0},
  // v2:{0}. Jaccards: 1, 1/2, 0 -> mean 0.5.
  const Graph g = gen::path_graph(3);
  const auto a = from_labels(2, {0, 1});
  const auto b = from_labels(2, {0, 0});
  EXPECT_DOUBLE_EQ(replica_set_jaccard(g, a, b), 0.5);
}

TEST(ReplicaJaccard, MismatchThrows) {
  const Graph g = gen::path_graph(3);
  const auto short_part = from_labels(2, {0});
  EXPECT_THROW((void)replica_set_jaccard(g, short_part, short_part),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlp
